//! The scenario IR: a JSON document describing one campaign —
//! topology × protocol × energy model × fault/mobility plans × sweep
//! grid — parsed and validated into a [`Scenario`].
//!
//! Design rules:
//!
//! * **Everything is explicit.** A scenario lists its cells one by one
//!   (`cells`) rather than encoding grid-nesting conventions; the
//!   committed `e16`/`e17` scenarios prove the format covers real
//!   experiments byte-identically, and explicit cells are what makes
//!   that proof checkable by eye.
//! * **Errors carry their path.** Every validation failure names the
//!   JSON path it occurred at (``​`spec.cells[3]`: missing required key
//!   `n`​``), and parse failures are line-anchored by
//!   [`Json::parse`] — a hand-edited scenario points its author at the
//!   offending line.
//! * **The spec hash is canonical.** [`Scenario::spec_hash`] is FNV-1a
//!   over the *compact re-serialization* of the parsed document, so
//!   reformatting whitespace or reflowing lines never invalidates a
//!   checkpoint; changing any value does.

use radio_graph::GraphFamily;
use radio_util::Json;

/// A parsed, validated scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Campaign name; the final report lands at `sweep_<name>.json`.
    pub name: String,
    /// Seed / trial-count / backend block.
    pub sweep: SweepSpec,
    /// The grid, cell by cell, in execution order.
    pub cells: Vec<CellSpec>,
    /// Protocol configs, keyed by cell label (exact) or by the
    /// algorithm prefix before `:` (shared by a parameter family).
    pub protocols: Vec<(String, ProtocolSpec)>,
    /// Optional per-cell `.rtrc` capture.
    pub trace: Option<TraceSpec>,
    /// FNV-1a 64 over the canonical compact serialization.
    hash: u64,
}

/// The `sweep` block.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Master seed (JSON number, or string for values beyond 2⁵³).
    pub base_seed: u64,
    /// Trials per cell.
    pub trials: usize,
    /// Topology backend every cell runs on.
    pub backend: Backend,
    /// Intra-run engine threads (1 = trial-level fan-out only).
    pub threads_per_run: usize,
}

/// Which topology representation backs the cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Materialized CSR graphs (`DiGraph`), every family.
    Csr,
    /// Bucket-grid implicit geometric topology — byte-identical to CSR
    /// for the `geometric` family (the grid replays the same position
    /// draws), without materializing edges. Geometric-family cells
    /// only, and only for kernels that never consult the edge list.
    ImplicitGrid,
}

impl Backend {
    /// The IR string.
    pub fn label(&self) -> &'static str {
        match self {
            Backend::Csr => "csr",
            Backend::ImplicitGrid => "implicit_grid",
        }
    }
}

/// One grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    /// Algorithm label the kernel dispatches on (parameters ride in the
    /// label, e.g. `"alg1:f=0.3"` — they are part of the report key).
    pub label: String,
    /// Topology family.
    pub family: GraphFamily,
    /// Node count.
    pub n: usize,
    /// Family parameter (edge probability, radius, …).
    pub p: f64,
}

/// Which trial kernel runs a cell, plus its fixed parameters. The
/// per-cell *variable* parameters (crash fraction, listen ratio,
/// mobility σ) ride in the cell label, exactly as the hand-written
/// experiments encode them.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolSpec {
    /// Gossip (Algorithm 2) on a Brownian-mobile geometric field;
    /// label `"gossip:f=<sigma>"`.
    MobileGossip {
        /// Rounds between topology snapshots.
        switch_every: u64,
        /// Gossip schedule stretch factor.
        gamma: f64,
        /// Rumor-set tracking cap.
        tracked: Option<usize>,
    },
    /// Broadcast under fail-stop loss injected via crash plan, battery
    /// depletion, or both; label `"<variant>:f=<fraction>"` with
    /// variant ∈ {alg1, alg1_battery, alg1_both, alg3}.
    FaultyBroadcast {
        /// Round the doomed set stops participating.
        crash_round: u64,
        /// Exempt the source from the doomed set.
        spare_source: bool,
        /// Diameter hint for the Alg 3 window config.
        d_hint: u32,
    },
    /// Listen/tx cost-ratio crossover under the linear radio; label
    /// `"<alg>:r=<ratio>"` with alg ∈ {alg1, flood, decay}.
    EnergyCrossover {
        /// Flooding's per-round transmit probability.
        flood_q: f64,
        /// Diameter hint for Decay.
        d_hint: u32,
    },
    /// Network lifetime on finite jittered batteries; label
    /// `"<alg>"` with alg ∈ {alg1, flood, decay}.
    EnergyLifetime {
        /// Fixed mission horizon, in rounds.
        horizon: u64,
        /// Battery capacity before jitter.
        capacity: f64,
        /// Relative capacity jitter.
        jitter: f64,
        /// Flooding's per-round transmit probability.
        flood_q: f64,
        /// Diameter hint for Decay.
        d_hint: u32,
    },
}

impl ProtocolSpec {
    /// The IR `kind` string.
    pub fn kind(&self) -> &'static str {
        match self {
            ProtocolSpec::MobileGossip { .. } => "mobile_gossip",
            ProtocolSpec::FaultyBroadcast { .. } => "faulty_broadcast",
            ProtocolSpec::EnergyCrossover { .. } => "energy_crossover",
            ProtocolSpec::EnergyLifetime { .. } => "energy_lifetime",
        }
    }

    /// Whether the kernel works purely through the [`Topology`]
    /// interface (never touches the edge list or regenerates CSR
    /// snapshots itself) and so supports the implicit-grid backend.
    ///
    /// [`Topology`]: radio_graph::Topology
    pub fn supports_implicit(&self) -> bool {
        matches!(
            self,
            ProtocolSpec::FaultyBroadcast { .. } | ProtocolSpec::EnergyLifetime { .. }
        )
    }
}

/// Optional `trace` block: capped per-cell `.rtrc` capture, spec hash
/// stamped into every recording's `code_version`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpec {
    /// Directory the recordings land in.
    pub dir: String,
    /// Recordings kept per cell.
    pub per_cell_cap: usize,
}

/// FNV-1a 64-bit over `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn want_str<'j>(j: &'j Json, key: &str, path: &str) -> Result<&'j str, String> {
    let v = j.get_or_err(key, path)?;
    v.as_str()
        .ok_or_else(|| format!("`{path}.{key}`: expected a string, got {}", v.type_name()))
}

fn want_u64(j: &Json, key: &str, path: &str) -> Result<u64, String> {
    let v = j.get_or_err(key, path)?;
    v.as_u64().ok_or_else(|| {
        format!(
            "`{path}.{key}`: expected a non-negative integer, got {}",
            v.type_name()
        )
    })
}

fn want_f64(j: &Json, key: &str, path: &str) -> Result<f64, String> {
    let v = j.get_or_err(key, path)?;
    v.as_f64()
        .ok_or_else(|| format!("`{path}.{key}`: expected a number, got {}", v.type_name()))
}

fn opt_u64(j: &Json, key: &str, path: &str, default: u64) -> Result<u64, String> {
    match j.get(key) {
        None => Ok(default),
        Some(_) => want_u64(j, key, path),
    }
}

fn opt_f64(j: &Json, key: &str, path: &str, default: f64) -> Result<f64, String> {
    match j.get(key) {
        None => Ok(default),
        Some(_) => want_f64(j, key, path),
    }
}

/// `"gnp_directed"` → [`GraphFamily::GnpDirected`], accepting exactly
/// the labels [`GraphFamily::label`] emits (the IR round-trips through
/// report JSON).
fn parse_family(label: &str, path: &str) -> Result<GraphFamily, String> {
    match label {
        "gnp_directed" => Ok(GraphFamily::GnpDirected),
        "gnp_undirected" => Ok(GraphFamily::GnpUndirected),
        "geometric" => Ok(GraphFamily::Geometric),
        "random_out_regular" => Ok(GraphFamily::RandomOutRegular),
        "path" => Ok(GraphFamily::Path),
        "star" => Ok(GraphFamily::Star),
        other => {
            if let Some(rest) = other
                .strip_prefix("caterpillar(legs=")
                .and_then(|r| r.strip_suffix(')'))
            {
                let legs: usize = rest
                    .parse()
                    .map_err(|_| format!("`{path}`: bad caterpillar legs `{rest}`"))?;
                return Ok(GraphFamily::Caterpillar { legs });
            }
            Err(format!("`{path}`: unknown topology family `{other}`"))
        }
    }
}

impl Scenario {
    /// Parse and validate a scenario document. Parse failures are
    /// line-anchored; validation failures name their JSON path.
    pub fn parse(text: &str) -> Result<Scenario, String> {
        let doc = Json::parse(text)?;
        Self::from_json(&doc)
    }

    /// Validate an already-parsed document.
    pub fn from_json(doc: &Json) -> Result<Scenario, String> {
        let hash = fnv1a64(doc.to_string_compact().as_bytes());
        let version = want_u64(doc, "version", "spec")?;
        if version != 1 {
            return Err(format!("`spec.version`: unsupported version {version}"));
        }
        let name = want_str(doc, "name", "spec")?.to_string();
        if name.is_empty()
            || !name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
        {
            return Err(format!(
                "`spec.name`: `{name}` must be non-empty [A-Za-z0-9_-] (it names files)"
            ));
        }

        // --- sweep block -------------------------------------------------
        let sw = doc.get_or_err("sweep", "spec")?;
        let base_seed = match sw.get_or_err("base_seed", "spec.sweep")? {
            Json::Str(s) => s
                .parse::<u64>()
                .map_err(|_| format!("`spec.sweep.base_seed`: bad u64 string `{s}`"))?,
            other => other.as_u64().ok_or_else(|| {
                format!(
                    "`spec.sweep.base_seed`: expected an integer or u64 string, got {}",
                    other.type_name()
                )
            })?,
        };
        let trials = want_u64(sw, "trials", "spec.sweep")? as usize;
        if trials == 0 {
            return Err("`spec.sweep.trials`: must be at least 1".to_string());
        }
        let backend = match sw.get("backend") {
            None => Backend::Csr,
            Some(b) => match b.as_str() {
                Some("csr") => Backend::Csr,
                Some("implicit_grid") => Backend::ImplicitGrid,
                Some(other) => {
                    return Err(format!(
                        "`spec.sweep.backend`: unknown backend `{other}` \
                         (expected `csr` or `implicit_grid`)"
                    ))
                }
                None => {
                    return Err(format!(
                        "`spec.sweep.backend`: expected a string, got {}",
                        b.type_name()
                    ))
                }
            },
        };
        let threads_per_run = opt_u64(sw, "threads_per_run", "spec.sweep", 1)? as usize;
        if threads_per_run == 0 {
            return Err("`spec.sweep.threads_per_run`: must be at least 1".to_string());
        }

        // --- cells -------------------------------------------------------
        let cells_j = doc.get_or_err("cells", "spec")?;
        let cells_arr = cells_j.as_arr().ok_or_else(|| {
            format!(
                "`spec.cells`: expected an array, got {}",
                cells_j.type_name()
            )
        })?;
        if cells_arr.is_empty() {
            return Err("`spec.cells`: a campaign needs at least one cell".to_string());
        }
        let mut cells = Vec::with_capacity(cells_arr.len());
        for (i, c) in cells_arr.iter().enumerate() {
            let path = format!("spec.cells[{i}]");
            let label = want_str(c, "label", &path)?.to_string();
            let family = parse_family(want_str(c, "family", &path)?, &format!("{path}.family"))?;
            let n = want_u64(c, "n", &path)? as usize;
            if n == 0 {
                return Err(format!("`{path}.n`: must be at least 1"));
            }
            let p = want_f64(c, "p", &path)?;
            if !p.is_finite() || p < 0.0 {
                return Err(format!("`{path}.p`: must be finite and non-negative"));
            }
            cells.push(CellSpec {
                label,
                family,
                n,
                p,
            });
        }

        // --- protocols ---------------------------------------------------
        let protos_j = doc.get_or_err("protocols", "spec")?;
        let protos_obj = match protos_j {
            Json::Obj(pairs) => pairs,
            other => {
                return Err(format!(
                    "`spec.protocols`: expected an object, got {}",
                    other.type_name()
                ))
            }
        };
        let mut protocols = Vec::with_capacity(protos_obj.len());
        for (key, spec_j) in protos_obj {
            let path = format!("spec.protocols.{key}");
            let spec = parse_protocol(spec_j, &path)?;
            if protocols.iter().any(|(k, _)| k == key) {
                return Err(format!("`{path}`: duplicate protocol key"));
            }
            protocols.push((key.clone(), spec));
        }

        // --- trace (optional) --------------------------------------------
        let trace = match doc.get("trace") {
            None => None,
            Some(t) => {
                let dir = want_str(t, "dir", "spec.trace")?.to_string();
                let cap = want_u64(t, "per_cell_cap", "spec.trace")? as usize;
                if cap == 0 {
                    return Err("`spec.trace.per_cell_cap`: must be at least 1".to_string());
                }
                Some(TraceSpec {
                    dir,
                    per_cell_cap: cap,
                })
            }
        };

        let scenario = Scenario {
            name,
            sweep: SweepSpec {
                base_seed,
                trials,
                backend,
                threads_per_run,
            },
            cells,
            protocols,
            trace,
            hash,
        };
        scenario.check_cross_references()?;
        Ok(scenario)
    }

    /// Cross-field validation: every cell resolves to a protocol, every
    /// protocol is used, kernel/family/backend combinations are legal.
    fn check_cross_references(&self) -> Result<(), String> {
        let mut used = vec![false; self.protocols.len()];
        for (i, cell) in self.cells.iter().enumerate() {
            let path = format!("spec.cells[{i}]");
            let (key_idx, proto) = self.resolve_protocol(&cell.label).ok_or_else(|| {
                format!(
                    "`{path}`: no protocol entry matches label `{}` \
                     (neither the full label nor its `:`-prefix)",
                    cell.label
                )
            })?;
            used[key_idx] = true;
            match proto {
                ProtocolSpec::MobileGossip { .. } => {
                    if cell.family != GraphFamily::Geometric {
                        return Err(format!(
                            "`{path}`: mobile_gossip needs the geometric family \
                             (p is a connection radius), got `{}`",
                            cell.family.label()
                        ));
                    }
                    if self.sweep.backend == Backend::ImplicitGrid {
                        return Err(format!(
                            "`{path}`: mobile_gossip regenerates CSR snapshots and \
                             cannot run on the implicit_grid backend"
                        ));
                    }
                }
                ProtocolSpec::EnergyCrossover { .. }
                    if self.sweep.backend == Backend::ImplicitGrid =>
                {
                    return Err(format!(
                        "`{path}`: energy_crossover consults the materialized edge \
                         count and cannot run on the implicit_grid backend"
                    ));
                }
                _ => {}
            }
            if self.sweep.backend == Backend::ImplicitGrid && cell.family != GraphFamily::Geometric
            {
                return Err(format!(
                    "`{path}`: the implicit_grid backend supports only the geometric \
                     family, got `{}`",
                    cell.family.label()
                ));
            }
        }
        if let Some(i) = used.iter().position(|&u| !u) {
            return Err(format!(
                "`spec.protocols.{}`: unused protocol entry (no cell label matches — typo?)",
                self.protocols[i].0
            ));
        }
        Ok(())
    }

    /// The protocol entry for a cell label: exact key match first, then
    /// the label's `:`-prefix (so `"alg1:f=0.3"` and `"alg1:f=0.6"`
    /// share one `"alg1"` entry). Returns the entry index and spec.
    pub fn resolve_protocol(&self, label: &str) -> Option<(usize, &ProtocolSpec)> {
        if let Some(i) = self.protocols.iter().position(|(k, _)| k == label) {
            return Some((i, &self.protocols[i].1));
        }
        let prefix = label.split(':').next().unwrap_or(label);
        self.protocols
            .iter()
            .position(|(k, _)| k == prefix)
            .map(|i| (i, &self.protocols[i].1))
    }

    /// FNV-1a 64 over the canonical compact serialization of the parsed
    /// document — whitespace-insensitive, value-sensitive.
    pub fn spec_hash(&self) -> u64 {
        self.hash
    }

    /// The hash in the form stamped into `RunHeader::code_version` and
    /// the checkpoint manifest: `spec:<16 hex digits>`.
    pub fn spec_hash_string(&self) -> String {
        format!("spec:{:016x}", self.hash)
    }
}

fn parse_protocol(j: &Json, path: &str) -> Result<ProtocolSpec, String> {
    let kind = want_str(j, "kind", path)?;
    match kind {
        "mobile_gossip" => Ok(ProtocolSpec::MobileGossip {
            switch_every: opt_u64(j, "switch_every", path, 40)?,
            gamma: opt_f64(j, "gamma", path, 10.0)?,
            tracked: match j.get("tracked") {
                None => Some(64),
                Some(Json::Null) => None,
                Some(_) => Some(want_u64(j, "tracked", path)? as usize),
            },
        }),
        "faulty_broadcast" => Ok(ProtocolSpec::FaultyBroadcast {
            crash_round: opt_u64(j, "crash_round", path, 3)?,
            spare_source: match j.get("spare_source") {
                None => true,
                Some(Json::Bool(b)) => *b,
                Some(other) => {
                    return Err(format!(
                        "`{path}.spare_source`: expected a boolean, got {}",
                        other.type_name()
                    ))
                }
            },
            d_hint: opt_u64(j, "d_hint", path, 6)? as u32,
        }),
        "energy_crossover" => Ok(ProtocolSpec::EnergyCrossover {
            flood_q: opt_f64(j, "flood_q", path, 0.1)?,
            d_hint: opt_u64(j, "d_hint", path, 8)? as u32,
        }),
        "energy_lifetime" => Ok(ProtocolSpec::EnergyLifetime {
            horizon: opt_u64(j, "horizon", path, 400)?,
            capacity: opt_f64(j, "capacity", path, 100.0)?,
            jitter: opt_f64(j, "jitter", path, 0.2)?,
            flood_q: opt_f64(j, "flood_q", path, 0.1)?,
            d_hint: opt_u64(j, "d_hint", path, 8)? as u32,
        }),
        other => Err(format!("`{path}.kind`: unknown kernel `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> String {
        r#"{
            "version": 1,
            "name": "smoke",
            "sweep": {"base_seed": 7, "trials": 2},
            "cells": [
                {"label": "alg1:f=0.3", "family": "gnp_directed", "n": 64, "p": 0.2}
            ],
            "protocols": {"alg1": {"kind": "faulty_broadcast"}}
        }"#
        .to_string()
    }

    #[test]
    fn minimal_scenario_parses_with_defaults() {
        let s = Scenario::parse(&minimal()).expect("valid");
        assert_eq!(s.name, "smoke");
        assert_eq!(s.sweep.base_seed, 7);
        assert_eq!(s.sweep.backend, Backend::Csr);
        assert_eq!(s.sweep.threads_per_run, 1);
        assert_eq!(s.cells.len(), 1);
        let (_, proto) = s.resolve_protocol("alg1:f=0.3").expect("prefix match");
        assert_eq!(
            proto,
            &ProtocolSpec::FaultyBroadcast {
                crash_round: 3,
                spare_source: true,
                d_hint: 6
            }
        );
        assert!(s.trace.is_none());
    }

    #[test]
    fn base_seed_accepts_u64_strings_beyond_2_53() {
        let text = minimal().replace(
            "\"base_seed\": 7",
            "\"base_seed\": \"18446744073709551615\"",
        );
        let s = Scenario::parse(&text).expect("valid");
        assert_eq!(s.sweep.base_seed, u64::MAX);
    }

    #[test]
    fn spec_hash_ignores_whitespace_but_not_values() {
        let a = Scenario::parse(&minimal()).unwrap();
        let b = Scenario::parse(&minimal().replace("\n            ", " ")).unwrap();
        assert_eq!(a.spec_hash(), b.spec_hash(), "reformatting must not rehash");
        let c = Scenario::parse(&minimal().replace("\"trials\": 2", "\"trials\": 3")).unwrap();
        assert_ne!(a.spec_hash(), c.spec_hash(), "value changes must rehash");
        assert_eq!(a.spec_hash_string(), format!("spec:{:016x}", a.spec_hash()));
    }

    #[test]
    fn errors_name_their_json_path() {
        let no_n = minimal().replace("\"n\": 64, ", "");
        let err = Scenario::parse(&no_n).unwrap_err();
        assert!(err.contains("`spec.cells[0]`"), "got: {err}");
        assert!(err.contains("`n`"), "got: {err}");

        let bad_family = minimal().replace("gnp_directed", "small_world");
        let err = Scenario::parse(&bad_family).unwrap_err();
        assert!(err.contains("spec.cells[0].family"), "got: {err}");

        let bad_kind = minimal().replace("faulty_broadcast", "teleport");
        let err = Scenario::parse(&bad_kind).unwrap_err();
        assert!(err.contains("spec.protocols.alg1.kind"), "got: {err}");
    }

    #[test]
    fn parse_errors_are_line_anchored() {
        let truncated = "{\n  \"version\": 1,\n  \"name\" \"x\"\n}";
        let err = Scenario::parse(truncated).unwrap_err();
        assert!(err.starts_with("line 3"), "got: {err}");
    }

    #[test]
    fn unmatched_labels_and_unused_protocols_are_errors() {
        let orphan_cell = minimal().replace("\"alg1:f=0.3\"", "\"alg9:f=0.3\"");
        let err = Scenario::parse(&orphan_cell).unwrap_err();
        assert!(err.contains("no protocol entry matches"), "got: {err}");

        let unused = minimal().replace(
            r#""alg1": {"kind": "faulty_broadcast"}"#,
            r#""alg1": {"kind": "faulty_broadcast"}, "ghost": {"kind": "energy_lifetime"}"#,
        );
        let err = Scenario::parse(&unused).unwrap_err();
        assert!(err.contains("unused protocol entry"), "got: {err}");
    }

    #[test]
    fn implicit_backend_is_gated_to_geometric_and_edge_free_kernels() {
        let geo = minimal()
            .replace(
                "\"trials\": 2",
                "\"trials\": 2, \"backend\": \"implicit_grid\"",
            )
            .replace("gnp_directed", "geometric");
        assert!(Scenario::parse(&geo).is_ok());

        let gnp = minimal().replace(
            "\"trials\": 2",
            "\"trials\": 2, \"backend\": \"implicit_grid\"",
        );
        let err = Scenario::parse(&gnp).unwrap_err();
        assert!(err.contains("only the geometric family"), "got: {err}");

        let crossover = geo
            .replace("faulty_broadcast", "energy_crossover")
            .replace("alg1:f=0.3", "alg1:r=0.1");
        let err = Scenario::parse(&crossover).unwrap_err();
        assert!(err.contains("implicit_grid"), "got: {err}");
    }

    #[test]
    fn version_and_name_are_validated() {
        let err =
            Scenario::parse(&minimal().replace("\"version\": 1", "\"version\": 2")).unwrap_err();
        assert!(err.contains("unsupported version"), "got: {err}");
        let err = Scenario::parse(&minimal().replace("\"smoke\"", "\"bad name\"")).unwrap_err();
        assert!(err.contains("spec.name"), "got: {err}");
    }
}
