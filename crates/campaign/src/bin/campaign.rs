//! `campaign` — validate, run, resume, and inspect scenario campaigns.
//!
//! ```sh
//! campaign validate <spec.scenario.json>
//! campaign run      <spec.scenario.json> <ckpt-dir> [report-dir]
//! campaign resume   <spec.scenario.json> <ckpt-dir> [report-dir]
//! campaign status   <spec.scenario.json> <ckpt-dir>
//! ```
//!
//! `run` starts fresh (refusing a directory that already holds a
//! manifest); `resume` continues one (refusing a spec-hash or
//! code-version mismatch). Both write the aggregated report when a
//! report path is given and the campaign completes.

use radio_campaign::{Campaign, Scenario};
use std::process::ExitCode;

fn usage() {
    eprintln!(
        "usage:\n  campaign validate <spec.scenario.json>\n  \
         campaign run      <spec.scenario.json> <ckpt-dir> [report-dir]\n  \
         campaign resume   <spec.scenario.json> <ckpt-dir> [report-dir]\n  \
         campaign status   <spec.scenario.json> <ckpt-dir>"
    );
}

fn die(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::FAILURE
}

fn load_spec(path: &str) -> Result<Scenario, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Scenario::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_validate(spec_path: &str) -> ExitCode {
    let scenario = match load_spec(spec_path) {
        Ok(s) => s,
        Err(e) => return die(&e),
    };
    println!("ok: {spec_path}");
    println!("scenario:  {}", scenario.name);
    println!("spec hash: {}", scenario.spec_hash_string());
    println!(
        "sweep:     base_seed={} trials={} backend={} threads_per_run={}",
        scenario.sweep.base_seed,
        scenario.sweep.trials,
        scenario.sweep.backend.label(),
        scenario.sweep.threads_per_run
    );
    println!("cells:     {}", scenario.cells.len());
    for c in &scenario.cells {
        println!("  {} {} n={} p={}", c.label, c.family.label(), c.n, c.p);
    }
    println!("protocols: {}", scenario.protocols.len());
    for (label, proto) in &scenario.protocols {
        println!("  {label} -> {}", proto.kind());
    }
    match &scenario.trace {
        Some(t) => println!("trace:     dir={} per_cell_cap={}", t.dir, t.per_cell_cap),
        None => println!("trace:     none"),
    }
    ExitCode::SUCCESS
}

fn drive(mut campaign: Campaign, report: Option<&str>) -> ExitCode {
    loop {
        match campaign.step() {
            Ok(Some(idx)) => {
                let done = campaign.manifest().completed.len();
                let total = campaign.compiled().sweep().cells().len();
                eprintln!("cell {idx} done ({done}/{total})");
            }
            Ok(None) => break,
            Err(e) => return die(&e),
        }
    }
    if let Some(dir) = report {
        match campaign.write_report(dir) {
            Ok(path) => eprintln!("report written to {}", path.display()),
            Err(e) => return die(&e),
        }
    }
    eprintln!("campaign complete");
    ExitCode::SUCCESS
}

fn cmd_run(spec_path: &str, dir: &str, report: Option<&str>) -> ExitCode {
    let scenario = match load_spec(spec_path) {
        Ok(s) => s,
        Err(e) => return die(&e),
    };
    match Campaign::fresh(scenario, dir) {
        Ok(c) => drive(c, report),
        Err(e) => die(&e),
    }
}

fn cmd_resume(spec_path: &str, dir: &str, report: Option<&str>) -> ExitCode {
    let scenario = match load_spec(spec_path) {
        Ok(s) => s,
        Err(e) => return die(&e),
    };
    match Campaign::resume(scenario, dir) {
        Ok(c) => drive(c, report),
        Err(e) => die(&e),
    }
}

fn cmd_status(spec_path: &str, dir: &str) -> ExitCode {
    let scenario = match load_spec(spec_path) {
        Ok(s) => s,
        Err(e) => return die(&e),
    };
    // Status must work on a mismatched checkpoint too — that is when
    // you most need to see what's in the directory.
    match Campaign::resume(scenario, dir) {
        Ok(c) => {
            print!("{}", c.status());
            ExitCode::SUCCESS
        }
        Err(e) => match radio_campaign::runner::peek_manifest(std::path::Path::new(dir)) {
            Ok(Some(m)) => {
                eprintln!("warning: {e}");
                println!("manifest in {dir}:");
                println!("  scenario:     {}", m.scenario);
                println!("  spec hash:    {}", m.spec_hash);
                println!("  code version: {}", m.code_version);
                println!(
                    "  progress:     {}/{} cells",
                    m.completed.len(),
                    m.total_cells
                );
                ExitCode::FAILURE
            }
            Ok(None) => die(&format!("{dir} holds no campaign manifest")),
            Err(m_err) => die(&m_err),
        },
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    match strs.as_slice() {
        ["validate", spec] => cmd_validate(spec),
        ["run", spec, dir] => cmd_run(spec, dir, None),
        ["run", spec, dir, report] => cmd_run(spec, dir, Some(report)),
        ["resume", spec, dir] => cmd_resume(spec, dir, None),
        ["resume", spec, dir, report] => cmd_resume(spec, dir, Some(report)),
        ["status", spec, dir] => cmd_status(spec, dir),
        _ => {
            usage();
            ExitCode::FAILURE
        }
    }
}
