//! The compiler: lower a validated [`Scenario`] onto the existing
//! [`Sweep`] API, with generic dispatch over [`Topology`] backends.
//!
//! A compiled campaign owns a [`Sweep`] whose cells are the scenario's
//! cells verbatim, in order, and a per-cell executor that (1) resolves
//! the cell's protocol entry, (2) builds the topology the backend
//! prescribes from the exact RNG stream the sweep machinery would have
//! used (`derive_rng(trial_seed, b"sweep-graph", 0)`), and (3) invokes
//! the matching [`kernels`](crate::kernels) function — monomorphized
//! per backend, so the engine's neighbor-visit loops pay no dispatch
//! cost. Because seeds, graph streams, and aggregation all go through
//! `Sweep`, a compiled report is bit-identical to the hand-written
//! experiment it mirrors — and bit-identical between the CSR and
//! implicit-grid backends on geometric cells (the grid replays the
//! same position draws).
//!
//! [`Topology`]: radio_graph::Topology

use crate::ir::{Backend, ProtocolSpec, Scenario, TraceSpec};
use crate::kernels::{
    energy_crossover_trial, energy_lifetime_trial, faulty_broadcast_trial, mobile_gossip_trial,
    CrossoverCfg, FaultyBroadcastCfg, LifetimeCfg, MobileGossipCfg, TraceHandle,
};
use radio_graph::ImplicitGrid;
use radio_sim::{CellResults, Sweep, SweepCell, SweepReport, TracePlan, TrialResult};
use radio_util::derive_rng;

/// A scenario lowered onto the sweep API.
#[derive(Debug)]
pub struct Compiled {
    scenario: Scenario,
    sweep: Sweep,
}

impl Compiled {
    /// Lower a validated scenario.
    pub fn new(scenario: Scenario) -> Self {
        let mut sweep = Sweep::new(
            scenario.name.clone(),
            scenario.sweep.base_seed,
            scenario.sweep.trials,
        );
        if scenario.sweep.threads_per_run > 1 {
            sweep = sweep.with_threads_per_run(scenario.sweep.threads_per_run);
        }
        for c in &scenario.cells {
            sweep.push(SweepCell::new(c.label.clone(), c.family.clone(), c.n, c.p));
        }
        Compiled { scenario, sweep }
    }

    /// The source scenario.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The lowered sweep (cells in scenario order).
    pub fn sweep(&self) -> &Sweep {
        &self.sweep
    }

    /// Mutable access for harness-side overrides (`--quick` trial
    /// scaling). Overriding `trials` or `base_seed` changes the result
    /// bytes, exactly as it would on a hand-built sweep.
    pub fn sweep_mut(&mut self) -> &mut Sweep {
        &mut self.sweep
    }

    /// The trace plan the scenario asks for, spec hash stamped into
    /// every recording's `code_version` — the provenance chain from
    /// `.rtrc` back to the exact spec. `None` when the scenario has no
    /// `trace` block.
    pub fn trace_plan(&self) -> Option<TracePlan> {
        self.scenario
            .trace
            .as_ref()
            .map(|TraceSpec { dir, per_cell_cap }| {
                TracePlan::new(dir.clone(), *per_cell_cap)
                    .with_code_version(self.scenario.spec_hash_string())
            })
    }

    /// Execute one cell (rayon fan-out over its trials; bit-identical
    /// to serial). `plan`, when present, captures capped per-trial
    /// `.rtrc` recordings.
    ///
    /// # Panics
    /// Panics if `cell_index` is out of range.
    pub fn run_cell(&self, cell_index: usize, plan: Option<&TracePlan>) -> CellResults {
        let runner = |cell: &SweepCell, seed: u64| self.one_trial(cell, seed, plan);
        self.sweep.run_cell_raw_par(cell_index, &runner)
    }

    /// [`Compiled::run_cell`] without the rayon fan-out — the 1-thread
    /// reference for determinism checks.
    pub fn run_cell_serial(&self, cell_index: usize, plan: Option<&TracePlan>) -> CellResults {
        let runner = |cell: &SweepCell, seed: u64| self.one_trial(cell, seed, plan);
        self.sweep.run_cell_raw(cell_index, &runner)
    }

    /// Run every cell in order and aggregate — the in-memory
    /// (checkpoint-free) path the experiment harness uses.
    pub fn run_report(&self) -> SweepReport {
        let plan = self.trace_plan();
        let results: Vec<CellResults> = (0..self.sweep.cells().len())
            .map(|i| self.run_cell(i, plan.as_ref()))
            .collect();
        self.sweep.report(&results)
    }

    fn one_trial(&self, cell: &SweepCell, seed: u64, plan: Option<&TracePlan>) -> TrialResult {
        let (_, proto) = self
            .scenario
            .resolve_protocol(&cell.algorithm)
            .expect("validated: every cell label resolves");
        let implicit = self.scenario.sweep.backend == Backend::ImplicitGrid;
        // All kernels drive v1 engine runs.
        let mut open = || {
            plan.and_then(|p| p.open(cell, seed, "v1"))
                .map(|sink| TraceHandle { sink })
        };
        // The machinery-equivalent graph stream: CSR and implicit arms
        // both draw from it, so geometric cells see identical positions
        // on either backend.
        let graph_rng = || derive_rng(seed, b"sweep-graph", 0);
        match proto {
            ProtocolSpec::MobileGossip {
                switch_every,
                gamma,
                tracked,
            } => {
                let cfg = MobileGossipCfg {
                    switch_every: *switch_every,
                    gamma: *gamma,
                    tracked: *tracked,
                };
                mobile_gossip_trial(&cfg, cell, seed)
            }
            ProtocolSpec::FaultyBroadcast {
                crash_round,
                spare_source,
                d_hint,
            } => {
                let cfg = FaultyBroadcastCfg {
                    crash_round: *crash_round,
                    spare_source: *spare_source,
                    d_hint: *d_hint,
                };
                if implicit {
                    let grid = ImplicitGrid::generate(cell.n, cell.p, &mut graph_rng());
                    faulty_broadcast_trial(&cfg, cell, &grid, seed, Some(&mut open))
                } else {
                    let graph = cell.family.generate(cell.n, cell.p, &mut graph_rng());
                    faulty_broadcast_trial(&cfg, cell, &graph, seed, Some(&mut open))
                }
            }
            ProtocolSpec::EnergyCrossover { flood_q, d_hint } => {
                let cfg = CrossoverCfg {
                    flood_q: *flood_q,
                    d_hint: *d_hint,
                };
                // CSR-only (validated): the kernel consults the edge count.
                let graph = cell.family.generate(cell.n, cell.p, &mut graph_rng());
                energy_crossover_trial(&cfg, cell, &graph, seed, Some(&mut open))
            }
            ProtocolSpec::EnergyLifetime {
                horizon,
                capacity,
                jitter,
                flood_q,
                d_hint,
            } => {
                let cfg = LifetimeCfg {
                    horizon: *horizon,
                    capacity: *capacity,
                    jitter: *jitter,
                    flood_q: *flood_q,
                    d_hint: *d_hint,
                };
                if implicit {
                    let grid = ImplicitGrid::generate(cell.n, cell.p, &mut graph_rng());
                    energy_lifetime_trial(&cfg, cell, &grid, seed, Some(&mut open))
                } else {
                    let graph = cell.family.generate(cell.n, cell.p, &mut graph_rng());
                    energy_lifetime_trial(&cfg, cell, &graph, seed, Some(&mut open))
                }
            }
        }
    }
}
