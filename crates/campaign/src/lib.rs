//! # radio-campaign — declarative scenarios, compiled and checkpointed
//!
//! The campaign layer turns experiment *programs* into experiment
//! *data*. A `.scenario.json` file is the IR: topology family ×
//! protocol × energy model × sweep grid, validated with line-anchored
//! and path-anchored errors ([`ir`]). A compiler lowers the validated
//! spec onto the existing [`radio_sim::Sweep`] API with monomorphized
//! dispatch over [`radio_graph::Topology`] backends ([`compile`],
//! [`kernels`]). A runner executes the compiled sweep cell by cell
//! with atomic per-cell checkpoints and resumes interrupted campaigns,
//! refusing when the spec hash or code version changed ([`runner`],
//! [`checkpoint`]).
//!
//! Three invariants hold end to end:
//!
//! 1. **Spec-identical means byte-identical.** Two specs whose
//!    canonical forms hash equal produce byte-identical report JSON —
//!    the bench e16/e17 experiments are committed as scenario files
//!    and reproduce their hand-written predecessors' bytes exactly.
//! 2. **Interruption-transparent.** Kill a campaign at any point;
//!    resume produces the same report bytes as an uninterrupted run.
//! 3. **Provenance-stamped.** Per-cell `.rtrc` recordings carry the
//!    spec hash in their `code_version` header field, chaining every
//!    trace back to the exact spec that produced it.
//!
//! The `campaign` binary exposes `validate` / `run` / `resume` /
//! `status` over these layers.

pub mod checkpoint;
pub mod compile;
pub mod ir;
pub mod kernels;
pub mod runner;

pub use checkpoint::{Manifest, CODE_VERSION};
pub use compile::Compiled;
pub use ir::{Backend, CellSpec, ProtocolSpec, Scenario, SweepSpec, TraceSpec};
pub use runner::Campaign;
