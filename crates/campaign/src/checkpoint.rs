//! On-disk campaign state: a manifest plus one raw-results file per
//! completed cell, all written atomically (temp file + rename).
//!
//! **Crash-safety ordering.** A cell checkpoint is two writes: the
//! cell's raw trials (`cell_NNNN.json`), *then* the manifest listing it
//! as completed. A crash between the two leaves an orphaned cell file
//! the manifest doesn't claim — resume simply re-runs that cell
//! (deterministically, producing the identical file) and re-claims it.
//! The reverse order would let the manifest claim a cell whose file is
//! missing or torn, which is why it is forbidden.
//!
//! **Resume refusal.** The manifest records the scenario's spec hash
//! and the code version that produced it. Resuming under a different
//! spec (even one value changed — the hash is over the canonical
//! compact form, so reformatting is fine) or a different build refuses
//! rather than splicing incompatible halves into one report.
//!
//! **Byte fidelity.** Trial scalars are stored as JSON numbers in the
//! shortest-round-trip form `radio_util::Json` writes, which re-reads
//! to the exact `f64` — so aggregating resumed cells produces the same
//! report bytes as an uninterrupted run. The kill-and-resume
//! integration test pins this end to end.

use radio_sim::{CellResults, SweepCell, TrialEnergy, TrialResult};
use radio_util::{write_atomic, Json};
use std::path::{Path, PathBuf};

/// The code version stamped into manifests: resumes across different
/// builds are refused (trial streams may have changed).
pub const CODE_VERSION: &str = env!("CARGO_PKG_VERSION");

/// The campaign manifest: which cells are done, under which spec.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Scenario name (defensive cross-check only; the hash is the
    /// authority).
    pub scenario: String,
    /// `spec:<16 hex>` — the canonical spec hash.
    pub spec_hash: String,
    /// Build that produced the completed cells.
    pub code_version: String,
    /// Master seed (stringified in JSON so 64-bit values stay exact).
    pub base_seed: u64,
    /// Trials per cell.
    pub trials_per_cell: usize,
    /// Cells in the campaign.
    pub total_cells: usize,
    /// Completed cell indices, ascending.
    pub completed: Vec<usize>,
}

impl Manifest {
    /// A fresh manifest with nothing completed.
    pub fn fresh(
        scenario: &str,
        spec_hash: String,
        base_seed: u64,
        trials_per_cell: usize,
        total_cells: usize,
    ) -> Self {
        Manifest {
            scenario: scenario.to_string(),
            spec_hash,
            code_version: CODE_VERSION.to_string(),
            base_seed,
            trials_per_cell,
            total_cells,
            completed: Vec::new(),
        }
    }

    /// The manifest path under a checkpoint directory.
    pub fn path(dir: &Path) -> PathBuf {
        dir.join("manifest.json")
    }

    /// Atomically persist to `Manifest::path(dir)`.
    pub fn store(&self, dir: &Path) -> std::io::Result<()> {
        let j = Json::obj(vec![
            ("version", Json::Num(1.0)),
            ("scenario", Json::str(&self.scenario)),
            ("spec_hash", Json::str(&self.spec_hash)),
            ("code_version", Json::str(&self.code_version)),
            ("base_seed", Json::str(self.base_seed.to_string())),
            ("trials_per_cell", Json::Num(self.trials_per_cell as f64)),
            ("total_cells", Json::Num(self.total_cells as f64)),
            (
                "completed",
                Json::Arr(
                    self.completed
                        .iter()
                        .map(|&i| Json::Num(i as f64))
                        .collect(),
                ),
            ),
        ]);
        write_atomic(Self::path(dir), j.to_string_pretty())
    }

    /// Load from `Manifest::path(dir)`. `Ok(None)` when no manifest
    /// exists (fresh campaign); `Err` on unreadable or malformed state.
    pub fn load(dir: &Path) -> Result<Option<Manifest>, String> {
        let path = Self::path(dir);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        };
        let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let p = "manifest";
        let version = num_field(&doc, "version", p)? as u64;
        if version != 1 {
            return Err(format!("{p}: unsupported manifest version {version}"));
        }
        let mut completed: Vec<usize> = doc
            .get_or_err("completed", p)?
            .as_arr()
            .ok_or_else(|| format!("`{p}.completed`: expected an array"))?
            .iter()
            .map(|j| {
                j.as_u64()
                    .map(|v| v as usize)
                    .ok_or_else(|| format!("`{p}.completed`: non-integer entry"))
            })
            .collect::<Result<_, _>>()?;
        completed.sort_unstable();
        completed.dedup();
        Ok(Some(Manifest {
            scenario: str_field(&doc, "scenario", p)?,
            spec_hash: str_field(&doc, "spec_hash", p)?,
            code_version: str_field(&doc, "code_version", p)?,
            base_seed: str_field(&doc, "base_seed", p)?
                .parse()
                .map_err(|_| format!("`{p}.base_seed`: bad u64 string"))?,
            trials_per_cell: num_field(&doc, "trials_per_cell", p)? as usize,
            total_cells: num_field(&doc, "total_cells", p)? as usize,
            completed,
        }))
    }
}

fn str_field(j: &Json, key: &str, path: &str) -> Result<String, String> {
    let v = j.get_or_err(key, path)?;
    v.as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("`{path}.{key}`: expected a string, got {}", v.type_name()))
}

fn num_field(j: &Json, key: &str, path: &str) -> Result<f64, String> {
    let v = j.get_or_err(key, path)?;
    v.as_f64()
        .ok_or_else(|| format!("`{path}.{key}`: expected a number, got {}", v.type_name()))
}

/// The raw-results path of cell `idx` under a checkpoint directory.
pub fn cell_path(dir: &Path, idx: usize) -> PathBuf {
    dir.join(format!("cell_{idx:04}.json"))
}

/// Atomically persist one cell's raw trials.
pub fn write_cell(dir: &Path, idx: usize, results: &CellResults) -> std::io::Result<()> {
    let j = Json::obj(vec![
        (
            "cell",
            Json::obj(vec![
                ("algorithm", Json::str(&results.cell.algorithm)),
                ("family", Json::str(results.cell.family.label())),
                ("n", Json::Num(results.cell.n as f64)),
                ("p", Json::Num(results.cell.p)),
            ]),
        ),
        (
            "trials",
            Json::Arr(results.trials.iter().map(trial_to_json).collect()),
        ),
    ]);
    write_atomic(cell_path(dir, idx), j.to_string_pretty())
}

/// Load cell `idx`, cross-checking the stored cell description against
/// the sweep's — a checkpoint written by a different grid is refused.
pub fn read_cell(dir: &Path, idx: usize, expect: &SweepCell) -> Result<CellResults, String> {
    let path = cell_path(dir, idx);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let p = format!("cell[{idx}]");
    let c = doc.get_or_err("cell", &p)?;
    let algorithm = str_field(c, "algorithm", &p)?;
    let family = str_field(c, "family", &p)?;
    let n = num_field(c, "n", &p)? as usize;
    let cp = num_field(c, "p", &p)?;
    if algorithm != expect.algorithm
        || family != expect.family.label()
        || n != expect.n
        || cp != expect.p
    {
        return Err(format!(
            "{}: checkpointed cell ({algorithm}/{family}/n={n}/p={cp}) does not match \
             the spec's cell {idx} ({}/{}/n={}/p={})",
            path.display(),
            expect.algorithm,
            expect.family.label(),
            expect.n,
            expect.p,
        ));
    }
    let trials = doc
        .get_or_err("trials", &p)?
        .as_arr()
        .ok_or_else(|| format!("`{p}.trials`: expected an array"))?
        .iter()
        .enumerate()
        .map(|(t, j)| trial_from_json(j, &format!("{p}.trials[{t}]")))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(CellResults {
        cell: expect.clone(),
        trials,
    })
}

fn trial_to_json(t: &TrialResult) -> Json {
    let energy = t.energy.as_ref().map_or(Json::Null, |e| {
        Json::obj(vec![
            ("total", Json::Num(e.total)),
            ("max_per_node", Json::Num(e.max_per_node)),
            (
                "first_depletion_round",
                e.first_depletion_round
                    .map_or(Json::Null, |r| Json::Num(r as f64)),
            ),
            ("depleted", Json::Num(e.depleted as f64)),
        ])
    });
    Json::obj(vec![
        ("completed", Json::Bool(t.completed)),
        ("success", Json::Bool(t.success)),
        ("rounds", Json::Num(t.rounds as f64)),
        ("hit_round_cap", Json::Bool(t.hit_round_cap)),
        (
            "total_transmissions",
            Json::Num(t.total_transmissions as f64),
        ),
        (
            "max_transmissions_per_node",
            Json::Num(t.max_transmissions_per_node as f64),
        ),
        ("informed", Json::Num(t.informed as f64)),
        ("energy", energy),
        (
            "extras",
            Json::Obj(
                t.extras
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v)))
                    .collect(),
            ),
        ),
    ])
}

fn bool_field(j: &Json, key: &str, path: &str) -> Result<bool, String> {
    match j.get_or_err(key, path)? {
        Json::Bool(b) => Ok(*b),
        other => Err(format!(
            "`{path}.{key}`: expected a boolean, got {}",
            other.type_name()
        )),
    }
}

fn trial_from_json(j: &Json, path: &str) -> Result<TrialResult, String> {
    let energy = match j.get_or_err("energy", path)? {
        Json::Null => None,
        e => Some(TrialEnergy {
            total: num_field(e, "total", path)?,
            max_per_node: num_field(e, "max_per_node", path)?,
            first_depletion_round: match e.get_or_err("first_depletion_round", path)? {
                Json::Null => None,
                r => Some(r.as_u64().ok_or_else(|| {
                    format!("`{path}.first_depletion_round`: expected an integer")
                })?),
            },
            depleted: num_field(e, "depleted", path)? as usize,
        }),
    };
    let extras = match j.get_or_err("extras", path)? {
        Json::Obj(pairs) => pairs
            .iter()
            .map(|(k, v)| {
                v.as_f64()
                    .map(|x| (k.clone(), x))
                    .ok_or_else(|| format!("`{path}.extras.{k}`: expected a number"))
            })
            .collect::<Result<Vec<_>, _>>()?,
        other => {
            return Err(format!(
                "`{path}.extras`: expected an object, got {}",
                other.type_name()
            ))
        }
    };
    Ok(TrialResult {
        completed: bool_field(j, "completed", path)?,
        success: bool_field(j, "success", path)?,
        rounds: num_field(j, "rounds", path)? as u64,
        hit_round_cap: bool_field(j, "hit_round_cap", path)?,
        total_transmissions: num_field(j, "total_transmissions", path)? as u64,
        max_transmissions_per_node: num_field(j, "max_transmissions_per_node", path)? as u32,
        informed: num_field(j, "informed", path)? as usize,
        energy,
        extras,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::GraphFamily;

    fn scratch(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("radio-ckpt-{}-{name}", std::process::id()))
    }

    fn sample_cell() -> SweepCell {
        SweepCell::new("alg1:f=0.3", GraphFamily::GnpDirected, 64, 0.125)
    }

    fn sample_results() -> CellResults {
        CellResults {
            cell: sample_cell(),
            trials: vec![
                TrialResult {
                    completed: true,
                    success: false,
                    rounds: 37,
                    hit_round_cap: false,
                    total_transmissions: 120,
                    max_transmissions_per_node: 3,
                    informed: 61,
                    energy: Some(TrialEnergy {
                        total: 19.75,
                        max_per_node: 0.30000000000000004, // non-terminating binary
                        first_depletion_round: Some(12),
                        depleted: 4,
                    }),
                    extras: vec![("survivor_informed_frac".into(), 1.0 / 3.0)],
                },
                TrialResult {
                    completed: false,
                    success: false,
                    rounds: 400,
                    hit_round_cap: true,
                    total_transmissions: 0,
                    max_transmissions_per_node: 0,
                    informed: 1,
                    energy: None,
                    extras: vec![],
                },
            ],
        }
    }

    #[test]
    fn cell_round_trips_exactly() {
        let dir = scratch("cell");
        let results = sample_results();
        write_cell(&dir, 7, &results).expect("write");
        let back = read_cell(&dir, 7, &sample_cell()).expect("read");
        assert_eq!(back.cell, results.cell);
        assert_eq!(back.trials, results.trials, "f64s must round-trip exactly");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cell_mismatch_is_refused() {
        let dir = scratch("mismatch");
        write_cell(&dir, 0, &sample_results()).expect("write");
        let other = SweepCell::new("alg1:f=0.3", GraphFamily::GnpDirected, 128, 0.125);
        let err = read_cell(&dir, 0, &other).unwrap_err();
        assert!(err.contains("does not match"), "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_round_trips_and_absence_is_ok_none() {
        let dir = scratch("manifest");
        assert_eq!(Manifest::load(&dir).expect("no manifest is fine"), None);
        let mut m = Manifest::fresh("unit", "spec:00ff".into(), u64::MAX, 5, 3);
        m.completed = vec![2, 0];
        m.store(&dir).expect("store");
        let mut expect = m.clone();
        expect.completed = vec![0, 2]; // load sorts
        assert_eq!(
            Manifest::load(&dir).expect("load").expect("present"),
            expect
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_manifest_is_an_error_not_a_fresh_start() {
        let dir = scratch("torn");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(Manifest::path(&dir), "{\"version\": 1, \"scen").unwrap();
        assert!(Manifest::load(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
