//! Trial kernels: the `(cell, topology, seed) → TrialResult` functions
//! the compiler dispatches cells onto.
//!
//! These are the hand-written e16/e17 runner closures promoted to
//! library code, **byte-for-byte**: every RNG domain label
//! (`b"engine"`, `b"e16-crash"`, `b"e17-battery"`, …) and every
//! config formula is preserved, so a scenario that mirrors an
//! experiment's sweep produces the exact committed report bytes — the
//! `scenario_fidelity` tests pin this. Variable parameters (crash
//! fraction, listen ratio, mobility σ) ride in the cell label, fixed
//! ones in the kernel config structs (defaults = the experiments'
//! constants).
//!
//! [`faulty_broadcast_trial`] and [`energy_lifetime_trial`] are generic
//! over [`Topology`] — they drive the engine purely through neighbor
//! queries, which is what lets the implicit-grid backend run them
//! without materializing edges. [`energy_crossover_trial`] consults the
//! materialized edge count (its G(n,p)-equivalence estimate predates
//! the implicit backends) and [`mobile_gossip_trial`] regenerates CSR
//! snapshot sequences, so both are CSR-only; the IR validator enforces
//! this.

use radio_core::broadcast::decay::DecayConfig;
use radio_core::broadcast::ee_general::GeneralBroadcastConfig;
use radio_core::broadcast::ee_random::{EeBroadcastConfig, EeRandomBroadcast};
use radio_core::broadcast::flood::FloodConfig;
use radio_core::broadcast::windowed::{
    run_windowed_energy, ProbSource, WindowedBroadcast, WindowedSpec,
};
use radio_core::gossip::{EeGossip, EeGossipConfig};
use radio_core::seq::SharedSequence;
use radio_energy::{Battery, EnergySession, LinearRadio};
use radio_graph::generate::mobile_geometric_sequence;
use radio_graph::{DiGraph, GraphFamily, NodeId, Topology};
use radio_sim::engine::{run_protocol, run_protocol_energy};
use radio_sim::{CrashPlan, EngineConfig, Faulty, Protocol, SweepCell, TrialResult};
use radio_util::{derive_rng, split_seed};

/// `"alg1:f=0.3"` → `("alg1", 0.3)` — the label convention every
/// parameterised kernel shares (`:r=` for ratios).
fn parse_label<'l>(label: &'l str, sep: &str) -> (&'l str, f64) {
    let (alg, v) = label
        .split_once(sep)
        .unwrap_or_else(|| panic!("label `{label}` missing `{sep}<value>`"));
    (
        alg,
        v.parse()
            .unwrap_or_else(|_| panic!("label `{label}`: bad value `{v}`")),
    )
}

/// The G(n,p) edge probability a degree-parameterised config should use
/// for a cell: `p` itself on G(n,p) families, the analytic disk measure
/// `π r²` (capped at 1) on the geometric family, where the cell's `p`
/// is a connection radius. Analytic rather than measured, so it is
/// identical on every backend.
fn p_gnp(cell: &SweepCell) -> f64 {
    match cell.family {
        GraphFamily::Geometric => (std::f64::consts::PI * cell.p * cell.p).min(1.0),
        _ => cell.p,
    }
}

/// Fixed parameters of the mobile-gossip kernel.
#[derive(Debug, Clone)]
pub struct MobileGossipCfg {
    /// Topology re-sample interval, in rounds.
    pub switch_every: u64,
    /// Gossip schedule stretch factor.
    pub gamma: f64,
    /// Rumor-set tracking cap.
    pub tracked: Option<usize>,
}

/// One mobility trial: gossip (Algorithm 2) while geometric snapshots
/// drift under Brownian motion. The whole snapshot sequence regenerates
/// from the trial seed (`cell.p` is the connection radius, σ rides in
/// the label as `gossip:f=σ`).
pub fn mobile_gossip_trial(cfg: &MobileGossipCfg, cell: &SweepCell, seed: u64) -> TrialResult {
    let n = cell.n;
    let (_, sigma) = parse_label(&cell.algorithm, ":f=");
    let gossip_cfg = EeGossipConfig {
        gamma: cfg.gamma,
        tracked: cfg.tracked,
        ..EeGossipConfig::for_gnp(n, p_gnp(cell))
    };
    let snapshots = (gossip_cfg.schedule_rounds() / cfg.switch_every + 2) as usize;
    let graphs = mobile_geometric_sequence(
        n,
        cell.p,
        sigma,
        snapshots,
        &mut derive_rng(seed, b"e16-mob", 0),
    );
    let refs: Vec<&DiGraph> = graphs.iter().collect();
    let mut protocol = EeGossip::new(gossip_cfg);
    let mut rng = derive_rng(seed, b"engine", 0);
    let run = radio_sim::run_dynamic(
        &refs,
        cfg.switch_every,
        &mut protocol,
        EngineConfig::with_max_rounds(gossip_cfg.schedule_rounds() + 1),
        &mut rng,
    );
    let time = protocol.gossip_time();
    let mut t = TrialResult::from_run(&run, time.is_some(), protocol.informed_count()).extra(
        "mean_msgs_per_node",
        run.metrics.mean_transmissions_per_node(),
    );
    if let Some(gt) = time {
        t = t.extra("gossip_time", gt as f64);
    }
    t
}

/// Fixed parameters of the fail-stop broadcast kernel.
#[derive(Debug, Clone)]
pub struct FaultyBroadcastCfg {
    /// Round the doomed set stops participating.
    pub crash_round: u64,
    /// Exempt the source (node 0) from the doomed set.
    pub spare_source: bool,
    /// Diameter hint handed to the Alg 3 window config.
    pub d_hint: u32,
}

/// One crash/depletion trial. The doomed node set is drawn once per
/// trial (fraction `f` from the label) and injected via the path the
/// label names: `alg1` (crash plan), `alg1_battery` (depletion),
/// `alg1_both` (both, on the same nodes), `alg3` (crash plan under the
/// windowed general broadcast).
pub fn faulty_broadcast_trial<T: Topology>(
    cfg: &FaultyBroadcastCfg,
    cell: &SweepCell,
    graph: &T,
    seed: u64,
    mut trace: Option<&mut dyn FnMut() -> Option<TraceHandle>>,
) -> TrialResult {
    let n = cell.n;
    let (variant, frac) = parse_label(&cell.algorithm, ":f=");
    let mut plan = CrashPlan::random_fraction(
        n,
        frac,
        cfg.crash_round,
        &mut derive_rng(seed, b"e16-crash", 0),
    );
    if cfg.spare_source {
        plan = plan.spare(0);
    }
    let survivors = plan.survivors();
    // Battery equivalent of "crash at round R": capacity R−1 under unit
    // drain depletes at the end of round R−1 — dead from round R on.
    let doomed_battery = || {
        Battery::per_node(
            (0..n)
                .map(|v| {
                    if plan.is_crashed(v as NodeId, u64::MAX) {
                        (cfg.crash_round - 1) as f64
                    } else {
                        f64::INFINITY
                    }
                })
                .collect(),
        )
    };
    let session = || {
        EnergySession::new(
            n,
            LinearRadio::uniform_drain(1.0),
            split_seed(seed, b"e16-bat", 0),
        )
        .with_battery(doomed_battery())
    };

    let a_cfg = EeBroadcastConfig::for_gnp(n, p_gnp(cell));
    let engine_cfg = EngineConfig::with_max_rounds(a_cfg.schedule_end() + 2);
    let survivor_frac = |p: &EeRandomBroadcast| {
        let known = survivors
            .iter()
            .filter(|&&v| p.informed_round(v).is_some())
            .count();
        known as f64 / survivors.len().max(1) as f64
    };
    let mut open_trace = || trace.as_mut().and_then(|f| f());

    let (trial, frac_informed, failed) = match variant {
        "alg1" => {
            let mut p = Faulty::new(EeRandomBroadcast::new(n, 0, a_cfg), plan.clone());
            let mut rng = derive_rng(seed, b"engine", 0);
            let run = match open_trace() {
                Some(mut sink) => {
                    let run = radio_sim::engine::run_protocol_traced(
                        graph,
                        &mut p,
                        engine_cfg,
                        &mut rng,
                        &mut sink.sink,
                    );
                    sink.finish(run.completed);
                    run
                }
                None => run_protocol(graph, &mut p, engine_cfg, &mut rng),
            };
            let fi = survivor_frac(p.inner());
            let failed = plan.failed_by(run.rounds, &[]);
            (
                TrialResult::from_run(&run, fi >= 1.0, p.informed_count()),
                fi,
                failed,
            )
        }
        "alg1_battery" => {
            // Same doomed set, injected purely through depletion.
            let mut p = EeRandomBroadcast::new(n, 0, a_cfg);
            let mut rng = derive_rng(seed, b"engine", 0);
            let mut s = session();
            let run = match open_trace() {
                Some(mut sink) => {
                    let run = radio_sim::engine::run_protocol_energy_traced(
                        graph,
                        &mut p,
                        engine_cfg,
                        &mut rng,
                        &mut s,
                        &mut sink.sink,
                    );
                    sink.finish(run.run.completed);
                    run
                }
                None => run_protocol_energy(graph, &mut p, engine_cfg, &mut rng, &mut s),
            };
            let fi = survivor_frac(&p);
            let failed = CrashPlan::none(n).failed_by(run.run.rounds, &run.energy.depleted_at);
            let informed = p.informed_count();
            (
                TrialResult::from_energy_run(&run, fi >= 1.0, informed),
                fi,
                failed,
            )
        }
        "alg1_both" => {
            // Crash AND depletion injected on the *same* nodes: the
            // summary count must still be the doomed-set size, not
            // twice it (`CrashPlan::failed_by` dedups).
            let mut p = Faulty::new(EeRandomBroadcast::new(n, 0, a_cfg), plan.clone());
            let mut rng = derive_rng(seed, b"engine", 0);
            let mut s = session();
            let run = run_protocol_energy(graph, &mut p, engine_cfg, &mut rng, &mut s);
            let fi = survivor_frac(p.inner());
            let failed = plan.failed_by(run.run.rounds, &run.energy.depleted_at);
            assert!(
                run.run.rounds < cfg.crash_round || failed == plan.crash_count(),
                "dedup broken: {} failed via two paths over {} doomed nodes",
                failed,
                plan.crash_count()
            );
            let informed = p.informed_count();
            (
                TrialResult::from_energy_run(&run, fi >= 1.0, informed),
                fi,
                failed,
            )
        }
        "alg3" => {
            let g_cfg = GeneralBroadcastConfig::new(n, cfg.d_hint);
            let spec = WindowedSpec {
                source: ProbSource::Shared(SharedSequence::new(
                    g_cfg.distribution(),
                    split_seed(seed, b"seq", 0),
                )),
                window: Some(g_cfg.window()),
                early_stop: false,
            };
            let mut p = Faulty::new(WindowedBroadcast::new(n, 0, spec), plan.clone());
            let mut rng = derive_rng(seed, b"engine3", 0);
            let run = run_protocol(
                graph,
                &mut p,
                EngineConfig::with_max_rounds(g_cfg.max_rounds()),
                &mut rng,
            );
            let fi = survivors
                .iter()
                .filter(|&&v| p.inner().informed_round(v) != u64::MAX)
                .count() as f64
                / survivors.len().max(1) as f64;
            let failed = plan.failed_by(run.rounds, &[]);
            (
                TrialResult::from_run(&run, fi >= 1.0, p.informed_count()),
                fi,
                failed,
            )
        }
        other => panic!("faulty_broadcast: unknown variant `{other}`"),
    };
    trial
        .extra("survivor_informed_frac", frac_informed)
        .extra("failed_nodes", failed as f64)
}

/// Fixed parameters of the listen-cost crossover kernel.
#[derive(Debug, Clone)]
pub struct CrossoverCfg {
    /// Flooding's per-round transmit probability.
    pub flood_q: f64,
    /// Diameter hint handed to Decay.
    pub d_hint: u32,
}

/// Equivalent `G(n,p)` edge probability for a generated topology, used
/// to parameterise Algorithm 1 on the geometric family. Measured from
/// the materialized edge count — the historical e17 estimate, kept
/// bit-exact (which is why this kernel is CSR-only).
fn p_equiv_measured(cell: &SweepCell, graph: &DiGraph) -> f64 {
    match cell.family {
        GraphFamily::GnpDirected => cell.p,
        _ => (graph.m() as f64 / cell.n as f64) / cell.n as f64,
    }
}

/// One crossover trial: run the label's algorithm (`alg1` / `flood` /
/// `decay`, ratio after `:r=`) under the ρ-parameterised linear radio
/// with infinite batteries, and report model-based energy.
pub fn energy_crossover_trial(
    cfg: &CrossoverCfg,
    cell: &SweepCell,
    graph: &DiGraph,
    seed: u64,
    mut trace: Option<&mut dyn FnMut() -> Option<TraceHandle>>,
) -> TrialResult {
    let n = cell.n;
    let (alg, ratio) = parse_label(&cell.algorithm, ":r=");
    // Charge-to-cap: Algorithm 1 cannot detect completion, so any node
    // still listening pays for the whole schedule even after the
    // transmitters quiesce — the honest listen bill.
    let mut session = EnergySession::new(
        n,
        LinearRadio::with_listen_ratio(ratio),
        split_seed(seed, b"e17-energy", 0),
    )
    .with_charge_to_cap(true);
    let out = match alg {
        "alg1" => {
            let cfg1 = EeBroadcastConfig::for_gnp(n, p_equiv_measured(cell, graph));
            let mut protocol = EeRandomBroadcast::new(n, 0, cfg1);
            let mut rng = derive_rng(seed, b"engine", 0);
            let engine_cfg = EngineConfig::with_max_rounds(cfg1.schedule_end() + 2);
            let run = match trace.as_mut().and_then(|f| f()) {
                Some(mut sink) => {
                    let run = radio_sim::engine::run_protocol_energy_traced(
                        graph,
                        &mut protocol,
                        engine_cfg,
                        &mut rng,
                        &mut session,
                        &mut sink.sink,
                    );
                    sink.finish(run.run.completed);
                    run
                }
                None => {
                    run_protocol_energy(graph, &mut protocol, engine_cfg, &mut rng, &mut session)
                }
            };
            let informed = protocol.informed_count();
            return TrialResult::from_energy_run(&run, informed == n, informed)
                .extra("energy_per_node", run.energy.mean_energy_per_node());
        }
        "flood" => {
            // Genie-stopped probabilistic flooding: the most favourable
            // accounting for the baseline.
            let fcfg =
                FloodConfig::with_prob(cfg.flood_q, DecayConfig::new(n, cfg.d_hint).max_rounds());
            run_windowed_energy(
                graph,
                0,
                fcfg.spec(),
                EngineConfig::with_max_rounds(fcfg.max_rounds),
                seed,
                &mut session,
            )
        }
        "decay" => {
            let dcfg = DecayConfig::new(n, cfg.d_hint); // early-stops
            run_windowed_energy(
                graph,
                0,
                dcfg.spec(),
                EngineConfig::with_max_rounds(dcfg.max_rounds()),
                seed,
                &mut session,
            )
        }
        other => panic!("energy_crossover: unknown algorithm `{other}`"),
    };
    let energy_per_node = out
        .energy
        .as_ref()
        .map_or(0.0, |e| e.mean_energy_per_node());
    out.to_trial().extra("energy_per_node", energy_per_node)
}

/// Fixed parameters of the network-lifetime kernel.
#[derive(Debug, Clone)]
pub struct LifetimeCfg {
    /// Fixed mission horizon, in rounds.
    pub horizon: u64,
    /// Battery capacity before jitter.
    pub capacity: f64,
    /// Relative capacity jitter.
    pub jitter: f64,
    /// Flooding's per-round transmit probability.
    pub flood_q: f64,
    /// Diameter hint handed to Decay.
    pub d_hint: u32,
}

/// One lifetime trial: finite jittered batteries, ρ = 1 radio, fixed
/// horizon, no early stopping — how long until the first battery dies,
/// and how much of the network is dead by the end?
pub fn energy_lifetime_trial<T: Topology>(
    cfg: &LifetimeCfg,
    cell: &SweepCell,
    graph: &T,
    seed: u64,
    mut trace: Option<&mut dyn FnMut() -> Option<TraceHandle>>,
) -> TrialResult {
    let n = cell.n;
    let battery = Battery::jittered(
        n,
        cfg.capacity,
        cfg.jitter,
        &mut derive_rng(seed, b"e17-battery", 0),
    );
    // Charge-to-cap: the mission horizon is fixed, so receivers that
    // never power down keep draining after the protocol quiesces.
    let mut session = EnergySession::new(
        n,
        LinearRadio::with_listen_ratio(1.0),
        split_seed(seed, b"e17-life", 0),
    )
    .with_battery(battery)
    .with_charge_to_cap(true);
    let engine_cfg = EngineConfig::with_max_rounds(cfg.horizon);
    let trial = match cell.algorithm.as_str() {
        "alg1" => {
            let cfg1 = EeBroadcastConfig::for_gnp(n, p_gnp(cell));
            let mut protocol = EeRandomBroadcast::new(n, 0, cfg1);
            let mut rng = derive_rng(seed, b"engine", 0);
            let run = match trace.as_mut().and_then(|f| f()) {
                Some(mut sink) => {
                    let run = radio_sim::engine::run_protocol_energy_traced(
                        graph,
                        &mut protocol,
                        engine_cfg,
                        &mut rng,
                        &mut session,
                        &mut sink.sink,
                    );
                    sink.finish(run.run.completed);
                    run
                }
                None => {
                    run_protocol_energy(graph, &mut protocol, engine_cfg, &mut rng, &mut session)
                }
            };
            let informed = protocol.informed_count();
            TrialResult::from_energy_run(&run, informed == n, informed)
        }
        "flood" => {
            // No early stop, no retirement: the classic always-listening
            // flood burns its batteries for the whole horizon.
            let fcfg = FloodConfig {
                early_stop: false,
                ..FloodConfig::with_prob(cfg.flood_q, cfg.horizon)
            };
            run_windowed_energy(graph, 0, fcfg.spec(), engine_cfg, seed, &mut session).to_trial()
        }
        "decay" => {
            let dcfg = DecayConfig {
                early_stop: false,
                ..DecayConfig::new(n, cfg.d_hint)
            };
            run_windowed_energy(graph, 0, dcfg.spec(), engine_cfg, seed, &mut session).to_trial()
        }
        other => panic!("energy_lifetime: unknown algorithm `{other}`"),
    };
    let depleted_frac = trial
        .energy
        .as_ref()
        .map_or(0.0, |e| e.depleted as f64 / n as f64);
    trial.extra("depleted_frac", depleted_frac)
}

/// An opened per-trial recording: the sink plus a finisher that
/// surfaces footer-write failures as a stderr warning instead of
/// failing the trial (trace capture degrades, never aborts — same
/// contract as `TracePlan::open`).
pub struct TraceHandle {
    /// The open `.rtrc` sink the kernel drives.
    pub sink: radio_trace::RecordingSink<std::io::BufWriter<std::fs::File>>,
}

impl TraceHandle {
    /// Write the footer; a failed footer is a warning, not an error.
    pub fn finish(self, completed: bool) {
        if let Err(e) = self.sink.finish(completed) {
            eprintln!("radio-campaign: warning: trace footer write failed: {e}");
        }
    }
}
