//! Kill-and-resume integration: run a campaign, interrupt it mid-way
//! (including a simulated crash that tears the in-flight state), resume,
//! and demand the final report is byte-identical to an uninterrupted
//! run. Also pins the refusal paths: changed spec hash, changed code
//! version, fresh-into-existing and resume-into-empty.

use radio_campaign::{Campaign, Manifest, Scenario};
use std::path::PathBuf;

const SPEC: &str = include_str!("../../../scenarios/smoke.scenario.json");

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("radio-resume-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn spec() -> Scenario {
    Scenario::parse(SPEC).expect("committed smoke scenario must validate")
}

#[test]
fn interrupted_campaign_resumes_to_byte_identical_report() {
    // Reference: uninterrupted run.
    let ref_dir = scratch("ref");
    let mut reference = Campaign::fresh(spec(), &ref_dir).expect("fresh");
    reference.run_all().expect("run");
    let want = reference.report().expect("report").to_json_string();

    // Interrupted run: two cells, then the process "dies".
    let dir = scratch("interrupted");
    let mut first = Campaign::fresh(spec(), &dir).expect("fresh");
    assert_eq!(first.step().expect("step"), Some(0));
    assert_eq!(first.step().expect("step"), Some(1));
    drop(first); // the kill: no further steps, no report

    // A new process resumes and finishes.
    let mut resumed = Campaign::resume(spec(), &dir).expect("resume");
    assert_eq!(resumed.remaining(), vec![2, 3]);
    resumed.run_all().expect("finish");
    let got = resumed.report().expect("report").to_json_string();
    assert_eq!(got, want, "resumed report must be byte-identical");

    std::fs::remove_dir_all(&ref_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_between_cell_and_manifest_rolls_the_cell_back() {
    // Simulate the torn state the write ordering permits: cell file on
    // disk, manifest not yet updated — the cell must simply re-run.
    let ref_dir = scratch("torn-ref");
    let mut reference = Campaign::fresh(spec(), &ref_dir).expect("fresh");
    reference.run_all().expect("run");
    let want = reference.report().expect("report").to_json_string();

    let dir = scratch("torn");
    let mut first = Campaign::fresh(spec(), &dir).expect("fresh");
    first.step().expect("step");
    first.step().expect("step");
    drop(first);
    // Tear: manifest forgets cell 1 (as if the crash hit after the cell
    // file landed but before the manifest rename), and the orphaned
    // cell file is additionally truncated mid-byte.
    let mut m = Manifest::load(&dir).expect("load").expect("present");
    assert_eq!(m.completed, vec![0, 1]);
    m.completed = vec![0];
    m.store(&dir).expect("store");
    let cell1 = radio_campaign::checkpoint::cell_path(&dir, 1);
    let bytes = std::fs::read(&cell1).expect("cell file");
    std::fs::write(&cell1, &bytes[..bytes.len() / 2]).expect("truncate");

    let mut resumed = Campaign::resume(spec(), &dir).expect("resume");
    assert_eq!(resumed.remaining(), vec![1, 2, 3], "cell 1 must re-run");
    resumed.run_all().expect("finish");
    let got = resumed.report().expect("report").to_json_string();
    assert_eq!(got, want, "re-run cell must regenerate identical bytes");

    std::fs::remove_dir_all(&ref_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_refuses_spec_hash_and_code_version_mismatches() {
    let dir = scratch("refuse");
    let mut c = Campaign::fresh(spec(), &dir).expect("fresh");
    c.step().expect("step");
    drop(c);

    // Spec drift: one value changed → different hash → refusal.
    let drifted =
        Scenario::parse(&SPEC.replace("\"base_seed\": 7", "\"base_seed\": 8")).expect("valid");
    let err = Campaign::resume(drifted, &dir).unwrap_err();
    assert!(err.contains("spec"), "got: {err}");

    // Reformatting only: same hash → resume fine.
    let reformatted: String = SPEC
        .lines()
        .map(str::trim_start)
        .collect::<Vec<_>>()
        .join("");
    Campaign::resume(Scenario::parse(&reformatted).expect("valid"), &dir)
        .expect("whitespace must not invalidate a checkpoint");

    // Code-version drift → refusal.
    let mut m = Manifest::load(&dir).expect("load").expect("present");
    m.code_version = "0.0.0-other".to_string();
    m.store(&dir).expect("store");
    let err = Campaign::resume(spec(), &dir).unwrap_err();
    assert!(err.contains("code version"), "got: {err}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fresh_refuses_existing_manifest_and_resume_refuses_empty_dir() {
    let dir = scratch("fresh-guard");
    let _c = Campaign::fresh(spec(), &dir).expect("fresh");
    let err = Campaign::fresh(spec(), &dir).unwrap_err();
    assert!(err.contains("already holds"), "got: {err}");
    std::fs::remove_dir_all(&dir).ok();

    let empty = scratch("empty");
    let err = Campaign::resume(spec(), &empty).unwrap_err();
    assert!(err.contains("no campaign manifest"), "got: {err}");
}
