//! Minimal, deterministic JSON tree: writer and parser.
//!
//! The workspace's machine-readable artifacts — sweep reports under
//! `results/` and the `BENCH_*.json` perf baselines — need JSON, but the
//! offline `serde` shim is a no-op facade. This module provides the small
//! subset actually required, with two properties serde_json does not
//! promise by default:
//!
//! * **Determinism**: objects are ordered `Vec`s (insertion order), float
//!   formatting is Rust's shortest-roundtrip `Display`, and the writer
//!   has no configuration — equal trees produce byte-identical output.
//!   The sweep determinism tests rely on this.
//! * **Self-containment**: the comparator binary in CI parses these files
//!   with [`Json::parse`], so the format is round-trippable in-tree.
//!
//! Two output paths share one recursive writer (so they are
//! byte-compatible by construction): [`Json::to_string_pretty`] builds
//! the document in memory, and [`Json::write_pretty_to`] /
//! [`Json::write_compact_to`] stream it straight into an
//! [`std::io::Write`] — the path for multi-GB artifacts (trace JSONL
//! exports, campaign logs) where materializing the full `String`
//! alongside the tree would double peak RSS.

use std::fmt;
use std::io::{self, Write as _};

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also used for NaN/infinite floats, which JSON cannot carry).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integers survive up to 2⁵³ exactly.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key–value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience: an object from pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Look up a key in an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// [`Json::get`] with a path-context error: schema validators (the
    /// campaign scenario IR) thread the JSON path of `self` through
    /// `path`, so a missing key reports *where* in the document it was
    /// expected (```spec.cells[3]`: missing required key `n` ``) instead
    /// of a bare key name.
    pub fn get_or_err(&self, key: &str, path: &str) -> Result<&Json, String> {
        match self {
            Json::Obj(_) => self
                .get(key)
                .ok_or_else(|| format!("`{path}`: missing required key `{key}`")),
            other => Err(format!(
                "`{path}`: expected an object with key `{key}`, got {}",
                other.type_name()
            )),
        }
    }

    /// The JSON type name, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "a boolean",
            Json::Num(_) => "a number",
            Json::Str(_) => "a string",
            Json::Arr(_) => "an array",
            Json::Obj(_) => "an object",
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Interpret as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as an exact unsigned integer: a non-negative [`Json::Num`]
    /// with no fractional part, within the f64-exact range (≤ 2⁵³).
    /// Anything else — negative, fractional, too large to be exact, or a
    /// non-number — is `None`, so counts and indices never silently
    /// truncate.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && *x <= 9.007_199_254_740_992e15 && x.trunc() == *x => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize with 2-space indentation and a trailing newline —
    /// byte-deterministic for equal trees.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        let _ = self.write(&mut out, 0, true); // writing to String is infallible
        out.push('\n');
        out
    }

    /// Serialize to a single line with no trailing newline — the form
    /// JSON-lines consumers expect (one document per line).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        let _ = self.write(&mut out, 0, false);
        out
    }

    /// Stream the pretty form (identical bytes to
    /// [`Json::to_string_pretty`], trailing newline included) into `w`
    /// through an internal [`io::BufWriter`], flushing before return.
    /// Peak memory is the tree plus one 8 KiB buffer, not the tree plus
    /// the full rendered document.
    pub fn write_pretty_to<W: io::Write>(&self, w: W) -> io::Result<()> {
        let mut out = IoFmt::new(io::BufWriter::new(w));
        self.write(&mut out, 0, true).map_err(|_| out.take_err())?;
        let mut w = out.into_inner()?;
        w.write_all(b"\n")?;
        w.flush()
    }

    /// Stream the compact single-line form (identical bytes to
    /// [`Json::to_string_compact`], no trailing newline) into `w` —
    /// **unbuffered and unflushed** by design: a JSONL exporter calls
    /// this once per line inside its own `BufWriter` loop, and a second
    /// buffer layer per line would only add copies.
    pub fn write_compact_to<W: io::Write>(&self, w: W) -> io::Result<()> {
        let mut out = IoFmt::new(w);
        self.write(&mut out, 0, false).map_err(|_| out.take_err())?;
        Ok(())
    }

    fn write<W: fmt::Write>(&self, out: &mut W, indent: usize, pretty: bool) -> fmt::Result {
        match self {
            Json::Null => out.write_str("null"),
            Json::Bool(b) => out.write_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_num(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    return out.write_str("[]");
                }
                out.write_char('[')?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.write_char(',')?;
                    }
                    if pretty {
                        out.write_char('\n')?;
                        push_indent(out, indent + 1)?;
                    }
                    item.write(out, indent + 1, pretty)?;
                }
                if pretty {
                    out.write_char('\n')?;
                    push_indent(out, indent)?;
                }
                out.write_char(']')
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    return out.write_str("{}");
                }
                out.write_char('{')?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.write_char(',')?;
                    }
                    if pretty {
                        out.write_char('\n')?;
                        push_indent(out, indent + 1)?;
                    }
                    write_escaped(out, k)?;
                    out.write_str(if pretty { ": " } else { ":" })?;
                    v.write(out, indent + 1, pretty)?;
                }
                if pretty {
                    out.write_char('\n')?;
                    push_indent(out, indent)?;
                }
                out.write_char('}')
            }
        }
    }

    /// Parse a JSON document (the subset this module writes, which is all
    /// of standard JSON except exotic escapes beyond `\uXXXX`).
    ///
    /// Errors are **line-anchored** — `line 3, col 14: expected ':'` —
    /// so a hand-edited scenario file points its author at the offending
    /// line, not a byte offset into the document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let result = (|| {
            let value = parse_value(bytes, &mut pos)?;
            skip_ws(bytes, &mut pos);
            if pos != bytes.len() {
                return Err(perr(pos, "trailing content"));
            }
            Ok(value)
        })();
        result.map_err(|e| {
            let (line, col) = line_col(bytes, e.pos);
            format!("line {line}, col {col}: {}", e.msg)
        })
    }
}

/// A parse failure at a byte offset; [`Json::parse`] renders it
/// line-anchored.
struct ParseErr {
    msg: String,
    pos: usize,
}

fn perr(pos: usize, msg: impl Into<String>) -> ParseErr {
    ParseErr {
        msg: msg.into(),
        pos,
    }
}

/// 1-based `(line, column)` of byte offset `pos` (clamped to the end of
/// input). Columns count bytes, which equals characters for the ASCII
/// documents this module writes.
fn line_col(bytes: &[u8], pos: usize) -> (usize, usize) {
    let pos = pos.min(bytes.len());
    let mut line = 1;
    let mut col = 1;
    for &b in &bytes[..pos] {
        if b == b'\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

/// Bridges [`fmt::Write`] (what the recursive writer speaks) onto an
/// [`io::Write`], parking the first I/O error so the caller can surface
/// it as an `io::Result` instead of the information-free [`fmt::Error`].
struct IoFmt<W: io::Write> {
    inner: W,
    err: Option<io::Error>,
}

impl<W: io::Write> IoFmt<W> {
    fn new(inner: W) -> Self {
        IoFmt { inner, err: None }
    }

    fn take_err(&mut self) -> io::Error {
        self.err
            .take()
            .unwrap_or_else(|| io::Error::other("formatter error"))
    }

    fn into_inner(self) -> io::Result<W> {
        match self.err {
            Some(e) => Err(e),
            None => Ok(self.inner),
        }
    }
}

impl<W: io::Write> fmt::Write for IoFmt<W> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.inner.write_all(s.as_bytes()).map_err(|e| {
            if self.err.is_none() {
                self.err = Some(e);
            }
            fmt::Error
        })
    }
}

fn push_indent<W: fmt::Write>(out: &mut W, levels: usize) -> fmt::Result {
    for _ in 0..levels {
        out.write_str("  ")?;
    }
    Ok(())
}

fn write_num<W: fmt::Write>(out: &mut W, x: f64) -> fmt::Result {
    if !x.is_finite() {
        out.write_str("null")
    } else if x == x.trunc() && x.abs() < 9.007_199_254_740_992e15 {
        write!(out, "{}", x as i64)
    } else {
        write!(out, "{x}")
    }
}

fn write_escaped<W: fmt::Write>(out: &mut W, s: &str) -> fmt::Result {
    out.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseErr> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(perr(*pos, "unexpected end of input")),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    other => return Err(perr(*pos, format!("expected ',' or ']', got {other:?}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(perr(*pos, "expected ':'"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    other => {
                        return Err(perr(*pos, format!("expected ',' or '}}', got {other:?}")))
                    }
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, ParseErr> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(perr(*pos, "invalid literal"))
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, ParseErr> {
    let hex = bytes
        .get(at..at + 4)
        .ok_or_else(|| perr(at, "truncated \\u escape"))?;
    u32::from_str_radix(
        std::str::from_utf8(hex).map_err(|e| perr(at, e.to_string()))?,
        16,
    )
    .map_err(|e| perr(at, e.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseErr> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(perr(*pos, "expected string"));
    }
    *pos += 1;
    let mut s = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(perr(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(s);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let scalar = if (0xD800..0xDC00).contains(&code) {
                            // High surrogate: standard JSON encodes astral
                            // characters as a \uXXXX\uXXXX pair.
                            if bytes.get(*pos + 1..*pos + 3) != Some(b"\\u") {
                                return Err(perr(*pos, "high surrogate without \\u low surrogate"));
                            }
                            let low = parse_hex4(bytes, *pos + 3)?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(perr(
                                    *pos,
                                    format!("invalid low surrogate {low:#06x}"),
                                ));
                            }
                            *pos += 6;
                            0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                        } else {
                            code
                        };
                        s.push(
                            char::from_u32(scalar)
                                .ok_or_else(|| perr(*pos, "invalid \\u code point"))?,
                        );
                    }
                    other => return Err(perr(*pos, format!("bad escape {other:?}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (bytes are valid UTF-8: the
                // input is a &str).
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|e| perr(*pos, e.to_string()))?;
                let c = rest.chars().next().expect("non-empty");
                s.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseErr> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .map_err(|e| perr(start, e.to_string()))?
        .parse::<f64>()
        .map(Json::Num)
        .map_err(|_| perr(start, "invalid number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Json {
        Json::obj(vec![
            ("name", Json::str("sweep")),
            ("seed", Json::Num(42.0)),
            ("ratio", Json::Num(0.125)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "cells",
                Json::Arr(vec![
                    Json::obj(vec![("n", Json::Num(1024.0))]),
                    Json::Arr(vec![]),
                    Json::Obj(vec![]),
                ]),
            ),
        ])
    }

    #[test]
    fn round_trip_preserves_tree() {
        let j = sample();
        let text = j.to_string_pretty();
        let back = Json::parse(&text).expect("parse");
        assert_eq!(back, j);
    }

    #[test]
    fn output_is_deterministic() {
        assert_eq!(sample().to_string_pretty(), sample().to_string_pretty());
    }

    #[test]
    fn integers_print_without_fraction() {
        let mut s = String::new();
        write_num(&mut s, 1024.0).unwrap();
        assert_eq!(s, "1024");
        s.clear();
        write_num(&mut s, 0.5).unwrap();
        assert_eq!(s, "0.5");
        s.clear();
        write_num(&mut s, f64::NAN).unwrap();
        assert_eq!(s, "null");
    }

    #[test]
    fn streamed_pretty_matches_in_memory_bytes() {
        // The contract `SweepReport::write_json` and the trace JSONL
        // exporter rely on: streaming produces the exact bytes of the
        // in-memory renderer, so swapping paths never perturbs committed
        // artifacts.
        let j = sample();
        let mut buf = Vec::new();
        j.write_pretty_to(&mut buf).unwrap();
        assert_eq!(buf, j.to_string_pretty().into_bytes());
    }

    #[test]
    fn streamed_compact_matches_and_round_trips() {
        let j = sample();
        let mut buf = Vec::new();
        j.write_compact_to(&mut buf).unwrap();
        assert_eq!(buf, j.to_string_compact().into_bytes());
        let text = String::from_utf8(buf).unwrap();
        assert!(!text.contains('\n'), "compact form must be one line");
        assert_eq!(Json::parse(&text).unwrap(), j);
    }

    #[test]
    fn compact_scalars_have_no_padding() {
        let j = Json::obj(vec![("a", Json::Num(1.0)), ("b", Json::Arr(vec![]))]);
        assert_eq!(j.to_string_compact(), r#"{"a":1,"b":[]}"#);
    }

    #[test]
    fn streaming_surfaces_io_errors() {
        struct Broken;
        impl io::Write for Broken {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk on fire"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let err = sample().write_compact_to(Broken).unwrap_err();
        assert_eq!(err.to_string(), "disk on fire");
    }

    #[test]
    fn string_escapes_round_trip() {
        let j = Json::str("a\"b\\c\nd\te\u{1}f");
        let back = Json::parse(&j.to_string_pretty()).expect("parse");
        assert_eq!(back, j);
    }

    #[test]
    fn parses_plain_json() {
        let j = Json::parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": null}}"#).expect("parse");
        assert_eq!(
            j.get("a").and_then(|a| a.as_arr()).map(|a| a.len()),
            Some(3)
        );
        assert_eq!(
            j.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(j.get("b").unwrap().get("c"), Some(&Json::Null));
    }

    #[test]
    fn surrogate_pairs_decode() {
        let j = Json::parse("\"\\ud83d\\ude00 ok\"").expect("surrogate pair");
        assert_eq!(j.as_str(), Some("\u{1F600} ok"));
        // Lone or malformed surrogates are rejected, not mangled.
        assert!(Json::parse(r#""\ud83d""#).is_err());
        assert!(Json::parse(r#""\ud83dA""#).is_err());
        assert!(Json::parse(r#""\udc00""#).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn getters() {
        let j = sample();
        assert_eq!(j.get("seed").and_then(Json::as_f64), Some(42.0));
        assert_eq!(j.get("name").and_then(Json::as_str), Some("sweep"));
        assert!(j.get("missing").is_none());
        assert!(Json::Null.get("x").is_none());
    }

    #[test]
    fn as_u64_accepts_exact_non_negative_integers() {
        assert_eq!(Json::Num(0.0).as_u64(), Some(0));
        assert_eq!(Json::Num(1024.0).as_u64(), Some(1024));
        assert_eq!(Json::Num(9.007_199_254_740_992e15).as_u64(), Some(1 << 53));
    }

    #[test]
    fn as_u64_rejects_every_inexact_shape() {
        assert_eq!(Json::Num(-1.0).as_u64(), None, "negative");
        assert_eq!(Json::Num(1.5).as_u64(), None, "fractional");
        assert_eq!(Json::Num(1e18).as_u64(), None, "beyond 2^53");
        assert_eq!(Json::Num(f64::NAN).as_u64(), None, "NaN");
        assert_eq!(Json::Num(f64::INFINITY).as_u64(), None, "infinity");
        assert_eq!(Json::str("7").as_u64(), None, "string");
        assert_eq!(Json::Null.as_u64(), None, "null");
    }

    #[test]
    fn get_or_err_reports_the_json_path() {
        let j = sample();
        assert_eq!(j.get_or_err("seed", "spec").unwrap().as_f64(), Some(42.0));
        let err = j.get_or_err("nope", "spec.cells[3]").unwrap_err();
        assert_eq!(err, "`spec.cells[3]`: missing required key `nope`");
    }

    #[test]
    fn get_or_err_on_non_object_names_the_actual_type() {
        let err = Json::Arr(vec![]).get_or_err("k", "spec.grid").unwrap_err();
        assert_eq!(
            err,
            "`spec.grid`: expected an object with key `k`, got an array"
        );
        let err = Json::Null.get_or_err("k", "root").unwrap_err();
        assert_eq!(err, "`root`: expected an object with key `k`, got null");
    }

    #[test]
    fn parse_errors_are_line_anchored() {
        // Missing ':' on line 3 (after the two header lines).
        let doc = "{\n  \"a\": 1,\n  \"b\" 2\n}\n";
        let err = Json::parse(doc).unwrap_err();
        assert!(err.starts_with("line 3, col "), "got: {err}");
        assert!(err.contains("expected ':'"), "got: {err}");

        // Trailing content after the document.
        let err = Json::parse("{}\n[]").unwrap_err();
        assert!(
            err.starts_with("line 2, col 1: trailing content"),
            "got: {err}"
        );

        // Bad literal, single-line: column points at the token.
        let err = Json::parse("[true, nul]").unwrap_err();
        assert!(err.starts_with("line 1, col 8:"), "got: {err}");

        // End-of-input anchors to the end, not past it.
        let err = Json::parse("{\"a\":").unwrap_err();
        assert!(err.starts_with("line 1, col 6:"), "got: {err}");
    }
}
