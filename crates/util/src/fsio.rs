//! Atomic file writes: the crash-safety primitive every on-disk
//! artifact in the workspace goes through.
//!
//! `write_atomic` writes to a temporary sibling and renames it into
//! place, so readers (and a campaign resuming after an interrupt) see
//! either the old complete file or the new complete file — never a
//! torn prefix. The rename is atomic on POSIX filesystems when source
//! and destination share a directory, which the sibling placement
//! guarantees.

use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-process uniquifier so concurrent writers (sweep threads, a
/// campaign runner and its trace plan) never collide on a temp name.
static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Write `contents` to `path` atomically: create missing parent
/// directories, write a temporary sibling (`.<name>.<pid>.<n>.tmp`),
/// fsync-free flush, then rename over `path`. On any failure the temp
/// file is removed and `path` is left untouched (old contents intact).
pub fn write_atomic(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let name = path
        .file_name()
        .ok_or_else(|| io::Error::other(format!("write_atomic: no file name in {path:?}")))?;
    let n = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    let tmp_name = format!(".{}.{}.{n}.tmp", name.to_string_lossy(), std::process::id());
    let tmp = path.with_file_name(tmp_name);
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents.as_ref())?;
        f.flush()?;
        drop(f);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("radio-fsio-{}-{name}", std::process::id()))
    }

    #[test]
    fn writes_new_file_and_creates_parents() {
        let dir = scratch("new");
        let path = dir.join("a/b/out.json");
        write_atomic(&path, b"{}").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{}");
        // No temp siblings left behind.
        let leftovers: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(leftovers.len(), 1, "leftovers: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replaces_existing_contents() {
        let dir = scratch("replace");
        let path = dir.join("out.json");
        write_atomic(&path, "old").unwrap();
        write_atomic(&path, "new contents").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "new contents");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failure_leaves_target_untouched_and_no_temp() {
        let dir = scratch("fail");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blocker");
        std::fs::write(&path, "original").unwrap();
        // A regular file where the parent directory should be forces
        // create_dir_all (and hence the write) to fail.
        let inner = path.join("child.json");
        assert!(write_atomic(&inner, "x").is_err());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "original");
        let names: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["blocker"], "no temp litter: {names:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn no_file_name_is_an_error() {
        assert!(write_atomic("/", "x").is_err());
    }
}
