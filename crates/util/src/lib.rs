//! Shared low-level utilities for the `adhoc-radio` workspace.
//!
//! This crate deliberately has no dependency on the rest of the workspace;
//! everything here is generic infrastructure:
//!
//! * [`bitset`] — a compact, fast [`BitSet`] used for rumor
//!   sets, visited sets and frontier bookkeeping throughout the simulator.
//! * [`rng`] — deterministic RNG fan-out: one master seed reproducibly
//!   derives independent streams for trials, nodes and shared sequences.
//! * [`table`] — plain-text aligned tables used by the experiment harness
//!   to print paper-style result tables.
//! * [`fsio`] — atomic temp-file-then-rename writes, so interrupted
//!   processes never leave torn reports or checkpoints on disk.

pub mod bitset;
pub mod fsio;
pub mod json;
pub mod rng;
pub mod table;

pub use bitset::BitSet;
pub use fsio::write_atomic;
pub use json::Json;
pub use rng::{derive_rng, split_seed, split_seed_indexed, split_seed_prefix, SeedSequence};
pub use table::TextTable;

/// Integer base-2 logarithm, rounded down. `ilog2_floor(1) == 0`.
///
/// # Panics
/// Panics if `x == 0`.
#[inline]
pub fn ilog2_floor(x: u64) -> u32 {
    assert!(x > 0, "ilog2_floor(0) is undefined");
    63 - x.leading_zeros()
}

/// Integer base-2 logarithm, rounded up. `ilog2_ceil(1) == 0`.
///
/// # Panics
/// Panics if `x == 0`.
#[inline]
pub fn ilog2_ceil(x: u64) -> u32 {
    assert!(x > 0, "ilog2_ceil(0) is undefined");
    if x == 1 {
        0
    } else {
        64 - (x - 1).leading_zeros()
    }
}

/// Natural-valued `log2` as `f64`, the form used in all of the paper's
/// parameter formulas (`T = ⌊log n / log d⌋`, `λ = log(n/D)`, …).
#[inline]
pub fn log2f(x: f64) -> f64 {
    x.log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ilog2_floor_matches_reference() {
        for x in 1u64..4096 {
            assert_eq!(ilog2_floor(x), (x as f64).log2().floor() as u32, "x={x}");
        }
        assert_eq!(ilog2_floor(u64::MAX), 63);
    }

    #[test]
    fn ilog2_ceil_matches_reference() {
        for x in 1u64..4096 {
            let expect = (x as f64).log2().ceil() as u32;
            assert_eq!(ilog2_ceil(x), expect, "x={x}");
        }
    }

    #[test]
    fn ilog2_edge_cases() {
        assert_eq!(ilog2_floor(1), 0);
        assert_eq!(ilog2_ceil(1), 0);
        assert_eq!(ilog2_floor(2), 1);
        assert_eq!(ilog2_ceil(2), 1);
        assert_eq!(ilog2_floor(3), 1);
        assert_eq!(ilog2_ceil(3), 2);
    }

    #[test]
    #[should_panic]
    fn ilog2_floor_zero_panics() {
        let _ = ilog2_floor(0);
    }

    #[test]
    #[should_panic]
    fn ilog2_ceil_zero_panics() {
        let _ = ilog2_ceil(0);
    }
}
