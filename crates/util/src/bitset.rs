//! A compact fixed-capacity bit set.
//!
//! Used throughout the workspace for rumor sets (gossiping), visited sets
//! (BFS) and informed/active bookkeeping in the simulation engine. The hot
//! operations — [`BitSet::insert`], [`BitSet::contains`],
//! [`BitSet::union_with`] — are branch-light and operate on `u64` words, so
//! joining two rumor sets of `n` rumors costs `n/64` word ORs (the paper's
//! gossip model assumes joined messages are sent in one time step; the
//! simulator still has to pay the memory traffic, so this matters for the
//! `d log n`-round gossip runs).

/// A fixed-capacity set of `usize` keys in `0..capacity`, backed by `u64`
/// words.
#[derive(Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
    /// Cached population count, maintained incrementally by `insert` /
    /// `remove` / `union_with` so `len()` is O(1).
    len: usize,
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BitSet")
            .field("capacity", &self.capacity)
            .field("len", &self.len)
            .finish()
    }
}

impl BitSet {
    /// An empty set able to hold keys `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0u64; capacity.div_ceil(64)],
            capacity,
            len: 0,
        }
    }

    /// A set containing every key in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        for w in s.words.iter_mut() {
            *w = u64::MAX;
        }
        s.trim_tail();
        s.len = capacity;
        s
    }

    /// Zero out the bits beyond `capacity` in the last word.
    fn trim_tail(&mut self) {
        let tail = self.capacity % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Maximum key + 1.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of keys currently in the set. O(1).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no key is present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if every key in `0..capacity` is present.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len == self.capacity
    }

    /// Insert `key`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    /// Panics if `key >= capacity`.
    #[inline]
    pub fn insert(&mut self, key: usize) -> bool {
        assert!(
            key < self.capacity,
            "key {key} out of capacity {}",
            self.capacity
        );
        let (w, b) = (key / 64, key % 64);
        let mask = 1u64 << b;
        let fresh = self.words[w] & mask == 0;
        self.words[w] |= mask;
        self.len += fresh as usize;
        fresh
    }

    /// Remove `key`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, key: usize) -> bool {
        assert!(
            key < self.capacity,
            "key {key} out of capacity {}",
            self.capacity
        );
        let (w, b) = (key / 64, key % 64);
        let mask = 1u64 << b;
        let present = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        self.len -= present as usize;
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, key: usize) -> bool {
        if key >= self.capacity {
            return false;
        }
        let (w, b) = (key / 64, key % 64);
        self.words[w] & (1u64 << b) != 0
    }

    /// `self ← self ∪ other`. Returns the number of newly added keys.
    ///
    /// This is the gossip "join" operation from the paper's §3: a node
    /// merges every incoming message's rumor set into its own.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) -> usize {
        assert_eq!(
            self.capacity, other.capacity,
            "union of bit sets with different capacities"
        );
        let mut added = 0usize;
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            let before = a.count_ones();
            *a |= *b;
            added += (a.count_ones() - before) as usize;
        }
        self.len += added;
        added
    }

    /// Number of keys present in both sets.
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// True if every key of `self` is also in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity);
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// Remove all keys.
    pub fn clear(&mut self) {
        for w in self.words.iter_mut() {
            *w = 0;
        }
        self.len = 0;
    }

    /// Iterate over the present keys in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set whose capacity is `max(keys) + 1` (or 0 when empty).
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let keys: Vec<usize> = iter.into_iter().collect();
        let cap = keys.iter().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(cap);
        for k in keys {
            s.insert(k);
        }
        s
    }
}

/// Ascending-order iterator over present keys.
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1; // clear lowest set bit
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(200);
        assert!(!s.contains(5));
        assert!(s.insert(5));
        assert!(!s.insert(5), "double insert must report not-fresh");
        assert!(s.contains(5));
        assert_eq!(s.len(), 1);
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(s.is_empty());
    }

    #[test]
    fn full_has_everything_and_trimmed_tail() {
        for cap in [0usize, 1, 63, 64, 65, 130] {
            let s = BitSet::full(cap);
            assert_eq!(s.len(), cap, "cap={cap}");
            assert!(s.is_full());
            for k in 0..cap {
                assert!(s.contains(k));
            }
            // Keys beyond capacity must never appear as members.
            assert!(!s.contains(cap));
        }
    }

    #[test]
    fn union_counts_added() {
        let mut a = BitSet::new(100);
        a.insert(1);
        a.insert(50);
        let mut b = BitSet::new(100);
        b.insert(50);
        b.insert(99);
        let added = a.union_with(&b);
        assert_eq!(added, 1);
        assert_eq!(a.len(), 3);
        assert!(a.contains(99));
    }

    #[test]
    fn iter_yields_sorted_keys() {
        let mut s = BitSet::new(300);
        for k in [250, 3, 64, 65, 0, 128] {
            s.insert(k);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![0, 3, 64, 65, 128, 250]);
    }

    #[test]
    fn subset_and_intersection() {
        let a: BitSet = [1usize, 2, 3].into_iter().collect();
        let mut b = BitSet::new(a.capacity());
        b.insert(1);
        b.insert(3);
        assert!(b.is_subset(&a));
        assert!(!a.is_subset(&b));
        assert_eq!(a.intersection_len(&b), 2);
    }

    #[test]
    fn clear_resets() {
        let mut s = BitSet::full(77);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    #[should_panic]
    fn insert_out_of_range_panics() {
        let mut s = BitSet::new(10);
        s.insert(10);
    }
}
