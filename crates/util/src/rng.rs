//! Deterministic RNG fan-out.
//!
//! Every experiment in this workspace is reproducible from a single master
//! seed. The fan-out scheme is a small keyed hash (SplitMix64-style mixing
//! over `(seed, label, index)`) that derives statistically independent
//! 64-bit seeds for sub-streams: one per trial, one per shared broadcast
//! sequence, one per node where needed. The derived seeds feed
//! [`rand_chacha::ChaCha8Rng`], a counter-mode generator whose output is
//! stable across library versions — important because `EXPERIMENTS.md`
//! records concrete numbers.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// SplitMix64 finalizer; good avalanche, cheap, and stable by definition.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Derive a child seed from `(seed, label, index)`.
///
/// `label` namespaces independent uses (e.g. `b"trial"`, `b"seq"`) so two
/// different consumers can never collide even with equal indices.
#[inline]
pub fn split_seed(seed: u64, label: &[u8], index: u64) -> u64 {
    split_seed_indexed(split_seed_prefix(seed, label), index)
}

/// The `(seed, label)` half of [`split_seed`], hoisted so callers that
/// derive many indices under one label (e.g. `ImplicitGnp`'s per-row
/// streams) can hash the label bytes once and finish each index with a
/// single [`split_seed_indexed`] call.
#[inline]
pub fn split_seed_prefix(seed: u64, label: &[u8]) -> u64 {
    let mut h = splitmix64(seed ^ 0xA076_1D64_78BD_642F);
    for &b in label {
        h = splitmix64(h ^ u64::from(b));
    }
    h
}

/// Finish a [`split_seed_prefix`] with an index. By construction
/// `split_seed_indexed(split_seed_prefix(s, l), i) == split_seed(s, l, i)`.
#[inline]
pub fn split_seed_indexed(prefix: u64, index: u64) -> u64 {
    splitmix64(prefix ^ splitmix64(index))
}

/// Build a [`ChaCha8Rng`] for `(seed, label, index)`.
pub fn derive_rng(seed: u64, label: &[u8], index: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(split_seed(seed, label, index))
}

/// A reusable handle for deriving numbered child streams from one master
/// seed: `SeedSequence::new(42).rng(b"trial", 7)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    master: u64,
}

impl SeedSequence {
    /// Wrap a master seed.
    pub fn new(master: u64) -> Self {
        SeedSequence { master }
    }

    /// The wrapped master seed.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derive the child seed for `(label, index)`.
    pub fn seed(&self, label: &[u8], index: u64) -> u64 {
        split_seed(self.master, label, index)
    }

    /// Derive a ready-to-use RNG for `(label, index)`.
    pub fn rng(&self, label: &[u8], index: u64) -> ChaCha8Rng {
        derive_rng(self.master, label, index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn derivation_is_deterministic() {
        let a = split_seed(42, b"trial", 3);
        let b = split_seed(42, b"trial", 3);
        assert_eq!(a, b);
    }

    /// The split form is the contract callers cache prefixes against.
    #[test]
    fn prefix_plus_index_composes_to_split_seed() {
        for seed in [0u64, 42, u64::MAX] {
            for label in [&b"trial"[..], b"gnp-row", b""] {
                let prefix = split_seed_prefix(seed, label);
                for index in [0u64, 1, 7, 1 << 40, u64::MAX] {
                    assert_eq!(
                        split_seed_indexed(prefix, index),
                        split_seed(seed, label, index)
                    );
                }
            }
        }
    }

    #[test]
    fn labels_namespace_streams() {
        assert_ne!(split_seed(42, b"trial", 0), split_seed(42, b"node", 0));
        assert_ne!(split_seed(42, b"trial", 0), split_seed(42, b"trial", 1));
        assert_ne!(split_seed(42, b"trial", 0), split_seed(43, b"trial", 0));
    }

    #[test]
    fn derived_rngs_are_reproducible() {
        let mut r1 = derive_rng(7, b"x", 0);
        let mut r2 = derive_rng(7, b"x", 0);
        for _ in 0..100 {
            assert_eq!(r1.random::<u64>(), r2.random::<u64>());
        }
    }

    #[test]
    fn derived_rngs_differ_across_indices() {
        let mut r1 = derive_rng(7, b"x", 0);
        let mut r2 = derive_rng(7, b"x", 1);
        let same = (0..64)
            .filter(|_| r1.random::<u64>() == r2.random::<u64>())
            .count();
        assert!(same < 2, "streams look correlated");
    }

    #[test]
    fn seed_sequence_matches_free_functions() {
        let sq = SeedSequence::new(99);
        assert_eq!(sq.seed(b"a", 5), split_seed(99, b"a", 5));
        assert_eq!(sq.master(), 99);
    }

    /// Crude uniformity check: derived seeds should hit all 16 top nibbles.
    #[test]
    fn seeds_spread_over_range() {
        let mut seen = [false; 16];
        for i in 0..256 {
            let s = split_seed(1, b"spread", i);
            seen[(s >> 60) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "top nibble never seen: {seen:?}");
    }
}
