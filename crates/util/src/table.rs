//! Plain-text aligned tables.
//!
//! The experiment harness prints paper-style tables (one per
//! theorem/figure); this module renders them with column alignment and a
//! GitHub-markdown-compatible delimiter row so the output can be pasted
//! into `EXPERIMENTS.md` verbatim.

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    Left,
    Right,
}

/// An aligned plain-text table builder.
///
/// ```
/// use radio_util::table::TextTable;
/// let mut t = TextTable::new(&["n", "rounds", "msgs/node"]);
/// t.row(&["1024", "31", "1.0"]);
/// t.row(&["4096", "37", "1.0"]);
/// let s = t.render();
/// assert!(s.contains("| n    | rounds | msgs/node |"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    aligns: Vec<Align>,
}

impl TextTable {
    /// Start a table with the given column headers. All columns default to
    /// right alignment except the first (labels read better left-aligned).
    pub fn new(headers: &[&str]) -> Self {
        let mut aligns = vec![Align::Right; headers.len()];
        if !aligns.is_empty() {
            aligns[0] = Align::Left;
        }
        TextTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            aligns,
        }
    }

    /// Override column alignments (length must match the header count).
    pub fn with_aligns(mut self, aligns: &[Align]) -> Self {
        assert_eq!(aligns.len(), self.headers.len());
        self.aligns = aligns.to_vec();
        self
    }

    /// Append one row of pre-formatted cells.
    ///
    /// # Panics
    /// Panics if the cell count does not match the header count.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_string()).collect());
        self
    }

    /// Append one row of already-owned cells.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as a markdown-compatible aligned table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], aligns: &[Align]| -> String {
            let mut line = String::from("|");
            for i in 0..ncols {
                let cell = &cells[i];
                let pad = widths[i] - cell.chars().count();
                match aligns[i] {
                    Align::Left => {
                        line.push(' ');
                        line.push_str(cell);
                        line.push_str(&" ".repeat(pad + 1));
                    }
                    Align::Right => {
                        line.push_str(&" ".repeat(pad + 1));
                        line.push_str(cell);
                        line.push(' ');
                    }
                }
                line.push('|');
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths, &self.aligns));
        out.push('\n');
        out.push('|');
        for (i, w) in widths.iter().enumerate() {
            match self.aligns[i] {
                Align::Left => out.push_str(&format!(":{}|", "-".repeat(w + 1))),
                Align::Right => out.push_str(&format!("{}:|", "-".repeat(w + 1))),
            }
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths, &self.aligns));
            out.push('\n');
        }
        out
    }
}

/// Format a float with a sensible number of significant digits for tables.
pub fn fmt_f64(x: f64) -> String {
    if !x.is_finite() {
        return format!("{x}");
    }
    let a = x.abs();
    if a == 0.0 {
        "0".to_string()
    } else if a >= 1000.0 {
        format!("{x:.0}")
    } else if a >= 10.0 {
        format!("{x:.1}")
    } else if a >= 0.1 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = TextTable::new(&["name", "v"]);
        t.row(&["a", "1"]);
        t.row(&["long-name", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w), "{s}");
        assert!(lines[1].starts_with("|:"));
        assert!(lines[1].ends_with(":|"));
    }

    #[test]
    #[should_panic]
    fn row_width_mismatch_panics() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn fmt_f64_ranges() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(12345.6), "12346");
        assert_eq!(fmt_f64(42.42), "42.4");
        assert_eq!(fmt_f64(1.234), "1.23");
        assert_eq!(fmt_f64(0.01234), "0.0123");
        assert_eq!(fmt_f64(f64::INFINITY), "inf");
    }

    #[test]
    fn unicode_widths_counted_by_chars() {
        let mut t = TextTable::new(&["α", "β"]);
        t.row(&["λ=3", "2⁻ᵏ"]);
        let s = t.render();
        assert!(s.contains("λ=3"));
    }
}
