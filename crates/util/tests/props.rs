//! Property tests: `BitSet` against a `HashSet` model, and seed-derivation
//! hygiene.

use proptest::prelude::*;
use radio_util::{split_seed, BitSet};
use std::collections::HashSet;

/// Operations in the model test.
#[derive(Debug, Clone)]
enum Op {
    Insert(usize),
    Remove(usize),
    Contains(usize),
}

fn op_strategy(cap: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..cap).prop_map(Op::Insert),
        (0..cap).prop_map(Op::Remove),
        (0..cap).prop_map(Op::Contains),
    ]
}

proptest! {
    /// BitSet behaves exactly like HashSet<usize> under arbitrary
    /// insert/remove/contains interleavings.
    #[test]
    fn bitset_matches_hashset_model(
        cap in 1usize..300,
        ops in prop::collection::vec((0..10u8, 0..1000usize), 0..200),
    ) {
        let mut bs = BitSet::new(cap);
        let mut model: HashSet<usize> = HashSet::new();
        for (sel, raw) in ops {
            let key = raw % cap;
            match sel % 3 {
                0 => {
                    let fresh = bs.insert(key);
                    prop_assert_eq!(fresh, model.insert(key));
                }
                1 => {
                    let was = bs.remove(key);
                    prop_assert_eq!(was, model.remove(&key));
                }
                _ => {
                    prop_assert_eq!(bs.contains(key), model.contains(&key));
                }
            }
            prop_assert_eq!(bs.len(), model.len());
        }
        // Final iteration agreement.
        let from_bs: Vec<usize> = bs.iter().collect();
        let mut from_model: Vec<usize> = model.into_iter().collect();
        from_model.sort_unstable();
        prop_assert_eq!(from_bs, from_model);
    }

    /// Union agrees with the model and reports the exact number of
    /// newly-added keys.
    #[test]
    fn union_matches_model(
        cap in 1usize..256,
        a in prop::collection::vec(0..1000usize, 0..100),
        b in prop::collection::vec(0..1000usize, 0..100),
    ) {
        let mut sa = BitSet::new(cap);
        let mut ma: HashSet<usize> = HashSet::new();
        for k in a {
            sa.insert(k % cap);
            ma.insert(k % cap);
        }
        let mut sb = BitSet::new(cap);
        let mut mb: HashSet<usize> = HashSet::new();
        for k in b {
            sb.insert(k % cap);
            mb.insert(k % cap);
        }
        let before = ma.len();
        let added = sa.union_with(&sb);
        ma.extend(mb.iter().copied());
        prop_assert_eq!(added, ma.len() - before);
        prop_assert_eq!(sa.len(), ma.len());
        prop_assert!(sb.is_subset(&sa) || !mb.is_subset(&ma));
    }

    /// The dummy-op strategy type-checks (keeps `Op` exercised).
    #[test]
    fn op_strategy_generates(cap in 1usize..50, op in (1usize..50).prop_flat_map(op_strategy)) {
        match op {
            Op::Insert(k) | Op::Remove(k) | Op::Contains(k) => prop_assert!(k < 50),
        }
        prop_assert!(cap >= 1);
    }

    /// Seed derivation never collides across label/index within a batch.
    #[test]
    fn split_seed_no_collisions(master in any::<u64>()) {
        let mut seen = HashSet::new();
        for label in [b"a".as_slice(), b"b".as_slice(), b"trial".as_slice()] {
            for idx in 0..64u64 {
                prop_assert!(
                    seen.insert(split_seed(master, label, idx)),
                    "collision at {label:?}/{idx}"
                );
            }
        }
    }
}
