//! # `adhoc-radio` — energy-efficient randomised communication in unknown ad-hoc networks
//!
//! A full Rust implementation of
//!
//! > Petra Berenbrink, Colin Cooper, Zengjian Hu.
//! > *Energy efficient randomised communication in unknown AdHoc networks.*
//! > SPAA 2007 / Theoretical Computer Science 410 (2009) 2549–2561.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`graph`] — directed radio-network graphs and generators
//!   (`G(n,p)`, paths/grids/trees, the paper's lower-bound constructions,
//!   random geometric graphs).
//! * [`sim`] — the round-synchronous radio-model simulation engine with
//!   the paper's collision rule and full energy accounting.
//! * [`energy`] — the pluggable energy subsystem: duty-state models
//!   (`TxOnly` = the paper's transmissions-only measure, `LinearRadio`
//!   with listen/idle/sleep costs, `FadingRadio` channel randomness),
//!   finite per-node batteries with fail-stop depletion, and network
//!   lifetime accounting.
//! * [`core`] — the paper's algorithms (Algorithms 1–3), its `α`
//!   transmission distribution, the baselines it compares against
//!   (Elsässer–Gasieniec, Czumaj–Rytter, BGI Decay, flooding), and the
//!   lower-bound harnesses (Observation 4.3, Theorem 4.4).
//! * [`trace`] — per-round structured trace capture (`.rtrc`
//!   recordings), replay verification, and first-divergence diffing for
//!   differential debugging of engine runs.
//! * [`stats`] — the statistics used by the experiment harness.
//! * [`util`] — bit sets, deterministic RNG fan-out, text tables.
//!
//! ## Quickstart
//!
//! ```
//! use adhoc_radio::prelude::*;
//!
//! // A directed G(n, p) random network, as in the paper's Section 2
//! // (δ = 8 keeps p below the n^{-2/5} threshold, the regime with all
//! // three phases).
//! let n = 1024;
//! let p = 8.0 * (n as f64).ln() / n as f64;
//! let mut rng = derive_rng(42, b"doc", 0);
//! let g = gnp_directed(n, p, &mut rng);
//!
//! // Algorithm 1: every node transmits at most once.
//! let cfg = EeBroadcastConfig::for_gnp(n, p);
//! let outcome = run_ee_broadcast(&g, 0, &cfg, 42);
//! assert!(outcome.all_informed);
//! assert!(outcome.metrics.max_transmissions_per_node() <= 1);
//! ```

pub use radio_core as core;
pub use radio_energy as energy;
pub use radio_graph as graph;
pub use radio_sim as sim;
pub use radio_stats as stats;
pub use radio_trace as trace;
pub use radio_util as util;

/// Scale knob for the `examples/`: returns `default / s`, clamped to at
/// least `min`, where `s` is the `ADHOC_RADIO_EXAMPLE_SCALE` environment
/// variable (default 1, i.e. full size).
///
/// The examples double as integration smoke tests
/// (`tests/examples_smoke.rs` runs all eight with `s = 8` and a fixed
/// seed); this keeps the demo sizes honest for humans while letting the
/// test suite run them at toy sizes.
pub fn example_scale(default: usize, min: usize) -> usize {
    let scale = match std::env::var("ADHOC_RADIO_EXAMPLE_SCALE") {
        Err(std::env::VarError::NotPresent) => 1,
        Ok(v) => match v.parse::<usize>() {
            Ok(s) if s >= 1 => s,
            _ => {
                eprintln!(
                    "warning: ignoring invalid ADHOC_RADIO_EXAMPLE_SCALE={v:?} \
                     (expected an integer >= 1); running at full scale"
                );
                1
            }
        },
        Err(e) => {
            eprintln!("warning: ignoring unreadable ADHOC_RADIO_EXAMPLE_SCALE ({e})");
            1
        }
    };
    (default / scale).max(min)
}

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use radio_core::broadcast::cr::{run_cr_broadcast, CrBroadcastConfig};
    pub use radio_core::broadcast::decay::{run_decay_broadcast, DecayConfig};
    pub use radio_core::broadcast::ee_general::{run_general_broadcast, GeneralBroadcastConfig};
    pub use radio_core::broadcast::ee_random::{
        run_ee_broadcast, run_ee_broadcast_fused, EeBroadcastConfig,
    };
    pub use radio_core::broadcast::eg::{run_eg_broadcast, EgBroadcastConfig};
    pub use radio_core::broadcast::epoch::{run_epoch_broadcast, EpochBroadcastConfig};
    pub use radio_core::broadcast::flood::{run_flood_broadcast, FloodConfig};
    pub use radio_core::broadcast::BroadcastOutcome;
    pub use radio_core::gossip::dynamic::{
        run_dynamic_gossip, DynamicGossipConfig, RumorBirth, RumorCoverage,
    };
    pub use radio_core::gossip::{run_ee_gossip, EeGossipConfig, GossipOutcome};
    pub use radio_core::lower_bound::{
        obs43_bound, obs43_trial, thm44_bound, thm44_round_budget, thm44_trial, TimeInvariant,
    };
    pub use radio_core::params::{general_time_scale, lambda, GnpParams};
    pub use radio_core::seq::{AlphaKind, KDistribution, TransmitDistribution};
    pub use radio_energy::{
        Battery, Duty, EnergyMetrics, EnergyModel, EnergySession, FadingRadio, LinearRadio, TxOnly,
    };
    pub use radio_graph::generate::*;
    pub use radio_graph::{
        induced_subgraph, largest_scc, strongly_connected_components, DiGraph, GridIndex,
        ImplicitGnp, ImplicitGrid, NodeId, RangeQueryCost, Subgraph, Topology,
    };
    pub use radio_sim::{
        run_dynamic, run_dynamic_energy, run_protocol_energy, run_protocol_energy_traced,
        run_protocol_fused, run_protocol_fused_energy, run_protocol_fused_energy_traced,
        run_protocol_fused_traced, run_protocol_traced, CrashPlan, DecideStreams, EnergyRunResult,
        Engine, EngineConfig, Faulty, FusedDecide, Metrics, Protocol, RunResult, ScatterStrategy,
        Sweep, SweepCell, SweepReport, TracePlan, TrialEnergy, TrialResult,
    };
    pub use radio_stats::{mean, quantile, LinearFit, SummaryStats};
    pub use radio_trace::{
        first_divergence, header_diff, Divergence, EventDivergence, NullSink, Recording,
        RecordingSink, ReplayVerifier, RingSink, RunHeader, TraceEvent, TraceSink,
    };
    pub use radio_util::{derive_rng, BitSet, Json, SeedSequence, TextTable};
}
