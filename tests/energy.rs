//! Integration tests for the `radio-energy` overlay: the paper-measure
//! (`TxOnly`) compatibility guarantee, bit-identity of overlay runs
//! against the frozen adjacency-list oracle, and crash/depletion
//! composition.

use adhoc_radio::core::broadcast::ee_general::GeneralBroadcastConfig;
use adhoc_radio::core::broadcast::ee_random::{EeBroadcastConfig, EeRandomBroadcast};
use adhoc_radio::core::broadcast::windowed::{ProbSource, WindowedBroadcast, WindowedSpec};
use adhoc_radio::core::gossip::{EeGossip, EeGossipConfig};
use adhoc_radio::prelude::*;
use adhoc_radio::sim::baseline::{run_adjlist, AdjListGraph};
use adhoc_radio::sim::Protocol;
use proptest::prelude::*;

fn gnp(n: usize, delta: f64, seed: u64) -> adhoc_radio::graph::DiGraph {
    let p = (delta * (n as f64).ln() / n as f64).min(0.9);
    gnp_directed(n, p, &mut derive_rng(seed, b"energy-g", 0))
}

/// Run `protocol` twice from the same seed — plain engine and TxOnly
/// overlay — and assert the overlay (a) does not perturb the run and
/// (b) reports energy exactly equal to the transmission counts.
fn assert_txonly_matches<P, F>(name: &str, g: &adhoc_radio::graph::DiGraph, make: F, rounds: u64)
where
    P: Protocol,
    F: Fn() -> P,
{
    let cfg = EngineConfig::with_max_rounds(rounds);
    let plain = {
        let mut p = make();
        let mut rng = derive_rng(11, b"engine", 0);
        adhoc_radio::sim::engine::run_protocol(g, &mut p, cfg, &mut rng)
    };
    let mut p = make();
    let mut rng = derive_rng(11, b"engine", 0);
    let mut session = EnergySession::new(g.n(), TxOnly, 99);
    let res = run_protocol_energy(g, &mut p, cfg, &mut rng, &mut session);

    assert_eq!(
        res.run.rounds, plain.rounds,
        "{name}: overlay changed the run"
    );
    assert_eq!(
        res.run.metrics, plain.metrics,
        "{name}: overlay changed metrics"
    );
    assert_eq!(
        res.energy.total_energy(),
        plain.metrics.total_transmissions() as f64,
        "{name}: TxOnly energy must equal total transmissions"
    );
    assert_eq!(
        res.energy.max_energy_per_node(),
        f64::from(plain.metrics.max_transmissions_per_node()),
        "{name}: max energy/node must equal max transmissions/node"
    );
    let per_node: Vec<f64> = plain
        .metrics
        .per_node()
        .iter()
        .map(|&c| f64::from(c))
        .collect();
    assert_eq!(
        res.energy.spent, per_node,
        "{name}: per-node energy mismatch"
    );
}

/// Satellite guarantee: under `TxOnly` every protocol in the workspace
/// reports energy exactly equal to `Metrics::total_transmissions()`.
#[test]
fn txonly_energy_equals_transmissions_for_every_protocol() {
    let n = 256;
    let p = 8.0 * (n as f64).ln() / n as f64;
    let g = gnp(n, 8.0, 1);

    assert_txonly_matches(
        "alg1",
        &g,
        || EeRandomBroadcast::new(n, 0, EeBroadcastConfig::for_gnp(n, p)),
        EeBroadcastConfig::for_gnp(n, p).schedule_end() + 2,
    );
    assert_txonly_matches(
        "flood",
        &g,
        || {
            WindowedBroadcast::new(
                n,
                0,
                WindowedSpec {
                    source: ProbSource::Fixed(0.1),
                    window: None,
                    early_stop: true,
                },
            )
        },
        300,
    );
    assert_txonly_matches(
        "decay",
        &g,
        || WindowedBroadcast::new(n, 0, DecayConfig::new(n, 6).spec()),
        DecayConfig::new(n, 6).max_rounds(),
    );
    assert_txonly_matches(
        "alg3",
        &g,
        || {
            let cfg = GeneralBroadcastConfig::new(n, 6);
            WindowedBroadcast::new(
                n,
                0,
                WindowedSpec {
                    source: ProbSource::Private(cfg.distribution()),
                    window: Some(cfg.window()),
                    early_stop: false,
                },
            )
        },
        GeneralBroadcastConfig::new(n, 6).max_rounds(),
    );
    assert_txonly_matches(
        "gossip",
        &g,
        || {
            EeGossip::new(EeGossipConfig {
                tracked: Some(32),
                ..EeGossipConfig::for_gnp(n, p)
            })
        },
        EeGossipConfig::for_gnp(n, p).schedule_rounds() + 1,
    );
}

/// Battery depletion composes with `CrashPlan`: a node that crashes and
/// runs out of charge in overlapping rounds fails once, end to end.
#[test]
fn crash_and_depletion_compose_and_count_once() {
    let n = 128;
    let g = gnp(n, 8.0, 3);
    let p = 8.0 * (n as f64).ln() / n as f64;
    let cfg = EeBroadcastConfig::for_gnp(n, p);

    // Nodes 1..=12 crash at round 3 *and* carry capacity-2 batteries
    // under unit drain (depleted at the end of round 2, dead from 3).
    let mut plan = CrashPlan::none(n);
    let mut caps = vec![f64::INFINITY; n];
    for v in 1..=12u32 {
        plan = plan.crash(v, 3);
        caps[v as usize] = 2.0;
    }
    let mut protocol = Faulty::new(EeRandomBroadcast::new(n, 0, cfg), plan.clone());
    let mut rng = derive_rng(5, b"engine", 0);
    let mut session = EnergySession::new(n, LinearRadio::uniform_drain(1.0), 17)
        .with_battery(Battery::per_node(caps));
    let res = run_protocol_energy(
        &g,
        &mut protocol,
        EngineConfig::with_max_rounds(cfg.schedule_end() + 2),
        &mut rng,
        &mut session,
    );
    assert!(res.run.rounds >= 3, "run long enough for both fault paths");
    assert_eq!(res.energy.depleted_count(), 12);
    assert_eq!(
        plan.failed_by(res.run.rounds, &res.energy.depleted_at),
        12,
        "a node that both crashes and depletes must be counted once"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// With a (battery-less) energy overlay attached, engine runs stay
    /// bit-identical to the frozen adjacency-list oracle on the same
    /// seed: the overlay draws from its own RNG stream and never touches
    /// delivery semantics.
    #[test]
    fn overlay_runs_bit_identical_to_baseline(
        n in 16usize..160,
        q in 0.05f64..0.9,
        ratio in 0.0f64..2.0,
        seed in 0u64..1_000_000,
    ) {
        let g = gnp(n, 6.0, seed);
        let a = AdjListGraph::from_digraph(&g);
        let spec = || WindowedSpec {
            source: ProbSource::Fixed(q),
            window: Some(24),
            early_stop: true,
        };
        let cfg = EngineConfig::with_max_rounds(200);

        let oracle = {
            let mut p = WindowedBroadcast::new(n, 0, spec());
            let mut rng = derive_rng(seed, b"engine", 0);
            run_adjlist(&a, &mut p, cfg, &mut rng)
        };
        let mut p = WindowedBroadcast::new(n, 0, spec());
        let mut rng = derive_rng(seed, b"engine", 0);
        let mut session = EnergySession::new(
            n,
            FadingRadio::new(LinearRadio::with_listen_ratio(ratio)),
            split_seed_for_test(seed),
        );
        let overlay = run_protocol_energy(&g, &mut p, cfg, &mut rng, &mut session);

        prop_assert_eq!(overlay.run.rounds, oracle.rounds);
        prop_assert_eq!(overlay.run.completed, oracle.completed);
        prop_assert_eq!(&overlay.run.metrics, &oracle.metrics);
        // And the energy report is self-consistent.
        let total: f64 = overlay.energy.spent.iter().sum();
        prop_assert!((overlay.energy.total_energy() - total).abs() < 1e-9);
        prop_assert!(overlay.energy.max_energy_per_node() <= total + 1e-9);
    }

    /// TxOnly == transmissions, propertized over densities and seeds.
    #[test]
    fn txonly_equality_holds_for_random_instances(
        n in 16usize..200,
        delta in 3.0f64..10.0,
        seed in 0u64..1_000_000,
    ) {
        let g = gnp(n, delta, seed);
        let p = (delta * (n as f64).ln() / n as f64).min(0.9);
        let cfg = EeBroadcastConfig::for_gnp(n, p);
        let mut protocol = EeRandomBroadcast::new(n, 0, cfg);
        let mut rng = derive_rng(seed, b"engine", 0);
        let mut session = EnergySession::new(n, TxOnly, seed ^ 0xE);
        let res = run_protocol_energy(
            &g,
            &mut protocol,
            EngineConfig::with_max_rounds(cfg.schedule_end() + 2),
            &mut rng,
            &mut session,
        );
        prop_assert_eq!(
            res.energy.total_energy(),
            res.run.metrics.total_transmissions() as f64
        );
        prop_assert!(res.energy.max_energy_per_node() <= 1.0, "Alg 1's ≤ 1 guarantee");
    }
}

/// Independent seed for the energy session (kept distinct from every
/// label the engine/protocols use).
fn split_seed_for_test(seed: u64) -> u64 {
    adhoc_radio::util::split_seed(seed, b"energy-test", 0)
}
