//! Smoke test: every example must run to completion.
//!
//! `cargo test` always *compiles* the examples but never runs them, so a
//! demo can silently rot (panic on startup, hit a moved API's changed
//! semantics, trip one of its own asserts) while the suite stays green.
//! This test executes all eight example binaries with a fixed seed (each
//! example hard-codes its own) and `ADHOC_RADIO_EXAMPLE_SCALE=8`, which
//! shrinks their network sizes via [`adhoc_radio::example_scale`] so the
//! debug-build runs stay fast.
//!
//! The binaries are located relative to this test executable
//! (`target/<profile>/examples/`), where `cargo test` has already placed
//! them; there is no nested cargo invocation.

use std::path::PathBuf;
use std::process::Command;

const EXAMPLES: [&str; 8] = [
    "quickstart",
    "sensor_gossip",
    "emergency_broadcast",
    "energy_tradeoff",
    "battery_lifetime",
    "collision_storm",
    "lower_bound_demo",
    "trace_replay",
];

/// `target/<profile>/examples`, derived from this test binary's own path
/// (`target/<profile>/deps/examples_smoke-<hash>`).
fn examples_dir() -> PathBuf {
    let exe = std::env::current_exe().expect("test binary path");
    let deps = exe.parent().expect("deps dir");
    let profile = deps.parent().expect("profile dir");
    profile.join("examples")
}

#[test]
fn all_examples_run_to_completion() {
    let dir = examples_dir();
    // The examples are independent processes; run them concurrently.
    let failures: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = EXAMPLES
            .iter()
            .map(|&name| {
                let bin = dir.join(name);
                scope.spawn(move || {
                    assert!(
                        bin.exists(),
                        "example binary {} not found — run via `cargo test`, \
                         which builds examples first",
                        bin.display()
                    );
                    let out = Command::new(&bin)
                        .env("ADHOC_RADIO_EXAMPLE_SCALE", "8")
                        .output()
                        .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
                    let stdout = String::from_utf8_lossy(&out.stdout);
                    if !out.status.success() {
                        Some(format!(
                            "{name}: exited with {:?}\n--- stdout ---\n{stdout}\n--- stderr ---\n{}",
                            out.status.code(),
                            String::from_utf8_lossy(&out.stderr)
                        ))
                    } else if stdout.trim().is_empty() {
                        Some(format!("{name}: produced no output"))
                    } else {
                        None
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| h.join().expect("example runner thread panicked"))
            .collect()
    });
    assert!(
        failures.is_empty(),
        "{} example(s) failed:\n\n{}",
        failures.len(),
        failures.join("\n\n")
    );
}
