//! End-to-end checks that the paper's theorem *shapes* hold on the
//! simulator at moderate sizes: who wins, what scales like what, and the
//! invariants that must never break. The full parameter sweeps live in
//! the `radio-bench` experiments; these tests are the fast smoke version
//! run on every `cargo test`.

use adhoc_radio::core::gossip::{run_ee_gossip, EeGossipConfig};
use adhoc_radio::graph::analysis::diameter_from;
use adhoc_radio::prelude::*;
use adhoc_radio::sim::parallel_trials;

fn sparse_p(n: usize, delta: f64) -> f64 {
    delta * (n as f64).ln() / n as f64
}

/// Theorem 2.1, success: Algorithm 1 informs everyone on sparse G(n,p),
/// across 20 independent (graph, run) seed pairs.
#[test]
fn thm21_alg1_whp_success() {
    let n = 2048;
    let p = sparse_p(n, 8.0);
    let results = parallel_trials(20, 0xA1, |i, seed| {
        let g = gnp_directed(n, p, &mut derive_rng(seed, b"g", 0));
        let out = run_ee_broadcast(&g, 0, &EeBroadcastConfig::for_gnp(n, p), seed);
        (i, out.all_informed, out.max_msgs_per_node())
    });
    for (i, ok, max_msgs) in &results {
        assert!(ok, "trial {i} failed to inform everyone");
        assert!(*max_msgs <= 1, "trial {i} broke the ≤1 invariant");
    }
}

/// Theorem 2.1, time: Algorithm 1's broadcast time grows like log n, not
/// like n — the log-log slope over a 16× size range must be far below
/// the slope ~1 a linear-time algorithm would show.
#[test]
fn thm21_alg1_time_is_polylog() {
    // δ = 6 keeps every n in the sparse (three-phase) regime — at n = 512,
    // δ = 8 would tip p over the n^{−2/5} threshold into the marginal
    // dense branch.
    let ns = [512usize, 1024, 2048, 4096, 8192];
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &n in &ns {
        let p = sparse_p(n, 6.0);
        // At these sizes a run occasionally strands a single node with no
        // Phase-2-activated in-neighbour (prob ≈ e^{−A₀}·n per run) — an
        // honest finite-size effect of the asymptotic theorem. The time
        // fit uses the completed runs; near-misses must still inform all
        // but a few nodes.
        let runs = parallel_trials(6, n as u64, |_, seed| {
            let g = gnp_directed(n, p, &mut derive_rng(seed, b"g", 0));
            let out = run_ee_broadcast(&g, 0, &EeBroadcastConfig::for_gnp_timed(n, p), seed);
            (out.broadcast_time, out.informed)
        });
        let times: Vec<f64> = runs
            .iter()
            .filter_map(|(t, _)| t.map(|t| t as f64))
            .collect();
        assert!(times.len() >= 4, "n={n}: too many incomplete runs");
        for (_, informed) in &runs {
            assert!(*informed >= n - 4, "n={n}: {informed}/{n} informed");
        }
        xs.push(n as f64);
        ys.push(mean(&times));
    }
    let fit = adhoc_radio::stats::log_log_slope(&xs, &ys);
    assert!(
        fit.slope < 0.45,
        "broadcast time slope {} looks polynomial, times: {ys:?}",
        fit.slope
    );
    // And it correlates with log n strongly.
    let logfit = adhoc_radio::stats::fit_against(&xs, &ys, |x| x.ln());
    assert!(logfit.r2 > 0.6, "poor log fit: R² = {}", logfit.r2);
}

/// Theorem 2.1, energy: total transmissions stay within a small multiple
/// of log n / p and, in particular, far below n once 1/p ≪ n/log n.
#[test]
fn thm21_alg1_total_energy_scale() {
    let n = 8192;
    let p = sparse_p(n, 8.0);
    let totals = parallel_trials(6, 0xE1, |_, seed| {
        let g = gnp_directed(n, p, &mut derive_rng(seed, b"g", 0));
        run_ee_broadcast(&g, 0, &EeBroadcastConfig::for_gnp(n, p), seed)
            .metrics
            .total_transmissions() as f64
    });
    let bound = (n as f64).ln() / p;
    let avg = mean(&totals);
    assert!(avg < 4.0 * bound, "avg total {avg} ≫ log n/p = {bound}");
    assert!(
        avg < n as f64,
        "energy should undercut one-message-per-node flooding"
    );
}

/// §1.3 comparison: Algorithm 1 matches Elsässer–Gasieniec on time but
/// transmits once per node where EG retransmits through Phase 1.
#[test]
fn alg1_vs_eg_energy_comparison() {
    let n = 4096;
    // d = 48 keeps D̂ = ⌈12/5.59⌉ = 3 (so EG's Phase 1 really repeats)
    // while A₀ ≈ 10 Phase-2-activated in-neighbours per node keep
    // Algorithm 1's completion probability high at this size.
    let p = 48.0 / n as f64;
    let runs = parallel_trials(5, 0xC3, |_, seed| {
        let g = gnp_directed(n, p, &mut derive_rng(seed, b"g", 0));
        let a = run_ee_broadcast(&g, 0, &EeBroadcastConfig::for_gnp(n, p), seed);
        let e = run_eg_broadcast(&g, 0, &EgBroadcastConfig::for_gnp(n, p), seed);
        (
            a.max_msgs_per_node(),
            e.max_msgs_per_node(),
            a.informed,
            e.all_informed,
        )
    });
    let mut alg1_max = 0u32;
    let mut eg_max = 0u32;
    for (i, (am, em, a_informed, e_done)) in runs.into_iter().enumerate() {
        alg1_max = alg1_max.max(am);
        eg_max = eg_max.max(em);
        assert!(e_done, "trial {i}: EG did not finish");
        // Alg 1 may strand a lone node at this size (finite-n effect).
        assert!(
            a_informed >= n - 2,
            "trial {i}: Alg1 informed {a_informed}/{n}"
        );
    }
    assert_eq!(alg1_max, 1);
    assert!(
        eg_max >= 2,
        "EG must pay ≥ D̂−1 = 2 transmissions somewhere, got {eg_max}"
    );
}

/// Theorem 3.2: gossip completes in O(d log n) rounds with O(log n)
/// messages per node, concentrated.
#[test]
fn thm32_gossip_time_and_energy() {
    let n = 1024;
    let p = sparse_p(n, 8.0);
    let d = n as f64 * p;
    let outs = parallel_trials(5, 0x32, |_, seed| {
        let g = gnp_directed(n, p, &mut derive_rng(seed, b"g", 0));
        let out = run_ee_gossip(&g, &EeGossipConfig::for_gnp(n, p), seed);
        (
            out.completed,
            out.gossip_time.unwrap_or(u64::MAX) as f64,
            out.max_msgs_per_node() as f64,
        )
    });
    for (ok, t, max_msgs) in outs {
        assert!(ok);
        assert!(t < 3.0 * d * (n as f64).log2(), "gossip time {t} too large");
        // O(log n) msgs/node with a generous constant.
        assert!(
            max_msgs < 8.0 * (n as f64).log2(),
            "max msgs {max_msgs} not O(log n)"
        );
    }
}

/// Lemma 3.1: measured G(n,p) diameters sit at ⌈log n / log d⌉ (±1).
#[test]
fn lemma31_gnp_diameter() {
    let n = 4096;
    for delta in [8.0, 16.0] {
        let p = sparse_p(n, delta);
        let predicted = ((n as f64).log2() / (n as f64 * p).log2()).ceil() as u32;
        let hits = parallel_trials(6, (delta * 10.0) as u64, |_, seed| {
            let g = gnp_directed(n, p, &mut derive_rng(seed, b"g", 0));
            diameter_from(&g, 0)
        })
        .into_iter()
        .filter(|d| {
            d.map(|d| d == predicted || d == predicted + 1)
                .unwrap_or(false)
        })
        .count();
        assert!(
            hits >= 5,
            "δ={delta}: only {hits}/6 diameters near {predicted}"
        );
    }
}

/// Theorem 4.1 / §1.3: Algorithm 3 and the transformed CR baseline both
/// finish on a shallow caterpillar; Algorithm 3 uses ≈ λ× fewer messages.
#[test]
fn thm41_alg3_beats_cr_on_energy() {
    let g = caterpillar(48, 20); // n = 1008, D = 49
    let n = g.n();
    let d = diameter_from(&g, 0).expect("connected");
    let lam = adhoc_radio::core::params::lambda(n, d);
    let mut alg3_msgs = 0.0;
    let mut cr_msgs = 0.0;
    for seed in 0..4 {
        let a = run_general_broadcast(&g, 0, &GeneralBroadcastConfig::new(n, d), seed);
        let c = run_cr_broadcast(&g, 0, &CrBroadcastConfig::new(n, d), seed);
        assert!(a.all_informed, "Alg3 seed {seed}");
        assert!(c.all_informed, "CR seed {seed}");
        alg3_msgs += a.mean_msgs_per_node();
        cr_msgs += c.mean_msgs_per_node();
    }
    let ratio = cr_msgs / alg3_msgs;
    assert!(
        ratio > lam / 2.0,
        "CR/Alg3 message ratio {ratio:.2} should be ≈ λ = {lam:.2}"
    );
}

/// Theorem 4.2 trade-off: on a deep network, larger λ lowers energy and
/// raises time (monotone in the swept range below log n / 2).
#[test]
fn thm42_tradeoff_is_monotone() {
    let g = caterpillar(128, 1); // n = 256, D = 129
    let n = g.n();
    let d = diameter_from(&g, 0).expect("connected");
    let mut prev_msgs = f64::INFINITY;
    let mut prev_time = 0.0;
    for lam in [1.0, 2.0, 4.0] {
        let cfg = GeneralBroadcastConfig::new(n, d).with_lambda(lam);
        let mut msgs = 0.0;
        let mut time = 0.0;
        for seed in 0..6 {
            let out = run_general_broadcast(&g, 0, &cfg, seed);
            assert!(out.all_informed, "λ={lam} seed={seed}");
            msgs += out.mean_msgs_per_node();
            time += out.broadcast_time.expect("done") as f64;
        }
        assert!(
            msgs < prev_msgs,
            "energy must fall with λ: {msgs} !< {prev_msgs} at λ={lam}"
        );
        assert!(
            time > prev_time * 0.8,
            "time should not collapse as λ grows (λ={lam})"
        );
        prev_msgs = msgs;
        prev_time = time;
    }
}

/// Algorithm 3 completes across the whole topology zoo.
#[test]
fn alg3_topology_zoo() {
    let zoo: Vec<(&str, adhoc_radio::graph::DiGraph)> = vec![
        ("path", path(128)),
        ("cycle", cycle(128)),
        ("star", star(128)),
        ("grid", grid2d(12, 11)),
        ("tree", binary_tree(127)),
        ("caterpillar", caterpillar(16, 7)),
        ("complete", complete(64)),
    ];
    for (name, g) in zoo {
        let n = g.n();
        let d = diameter_from(&g, 0).expect("connected");
        let out = run_general_broadcast(&g, 0, &GeneralBroadcastConfig::new_timed(n, d), 42);
        assert!(out.all_informed, "{name}: {}/{} informed", out.informed, n);
    }
}
