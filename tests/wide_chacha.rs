//! Property tests pinning the wide ChaCha kernel to the scalar
//! [`ChaCha8Rng`] stream — the bit-compatibility contract the batched
//! fused decide phase rests on.
//!
//! The claim under test: for *any* `(run_seed, node, round)` and *any*
//! supported lane width, the block a wide-kernel lane produces equals
//! the block the node's per-node stream generates lazily at the same
//! position (`DecideStreams` layout: decide lane = block `2·round`,
//! receive lane = block `2·round + 1`). If this holds lane-by-lane, the
//! engine may batch draws in any grouping — any chunking of the awake
//! list, any thread count, any host's dispatched width — without
//! changing a single draw, which is exactly how `decide_span` inherits
//! the v2 determinism contract.

use proptest::prelude::*;
use radio_sim::DecideStreams;
use rand::RngCore;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// One wide batch of decide-lane blocks == the scalar per-node
    /// streams, at every supported lane width (including widths beyond
    /// what this host dispatches), for arbitrary seeds/nodes/rounds.
    #[test]
    fn wide_lanes_match_per_node_streams(
        run_seed in any::<u64>(),
        base_node in 0u32..1_000_000,
        round in 0u64..(1 << 62),
        width_idx in 0usize..rand_chacha::WIDE_LANE_WIDTHS.len(),
        lanes in 1usize..=2 * rand_chacha::MAX_WIDE_LANES,
    ) {
        let width = rand_chacha::WIDE_LANE_WIDTHS[width_idx];
        let streams = DecideStreams::new(run_seed);
        let nodes: Vec<u32> = (0..lanes as u32).map(|i| base_node + i * 7).collect();
        let keys: Vec<[u32; 8]> = nodes.iter().map(|&v| streams.node_key(v)).collect();
        let counters = vec![DecideStreams::decide_block(round); lanes];
        let mut out = vec![[0u32; 16]; lanes];
        rand_chacha::chacha8_blocks_at_width(width, &keys, &counters, &mut out);
        for (l, &v) in nodes.iter().enumerate() {
            // The scalar reference: the node's positioned decide stream,
            // generating its block lazily on first draw.
            let mut scalar = streams.decide_rng(v, round);
            for (w, &word) in out[l].iter().enumerate() {
                prop_assert_eq!(
                    scalar.next_u32(), word,
                    "width {} lane {} word {}", width, l, w
                );
            }
        }
    }

    /// `from_generated_block` (the engine's way of turning a wide batch
    /// into positioned streams) is bit-identical to `set_block_pos` +
    /// lazy generation — including draws that run past the block
    /// boundary into the next block, and the receive lane.
    #[test]
    fn generated_block_streams_match_lazy_positioning(
        run_seed in any::<u64>(),
        node in 0u32..1_000_000,
        round in 0u64..(1 << 62),
        receive_lane in any::<bool>(),
        draws in 1usize..40,
    ) {
        let streams = DecideStreams::new(run_seed);
        let key = streams.node_key(node);
        let block = if receive_lane {
            DecideStreams::receive_block(round)
        } else {
            DecideStreams::decide_block(round)
        };
        // Lazy reference: position, let the first draw refill.
        let mut lazy = DecideStreams::rng_from_key(key, block);
        // Batched construction: block computed by the (wide-compatible)
        // block function, stream assembled around it.
        let words = rand_chacha::chacha8_block(&key, block);
        let mut batched = ChaCha8Rng::from_generated_block(key, block, words);
        for i in 0..draws {
            prop_assert_eq!(lazy.next_u32(), batched.next_u32(), "draw {}", i);
        }
    }

    /// `set_block_pos` mid-stream abandons a partially read buffer and
    /// reproduces the target block exactly — the edge the engine hits
    /// when a cached stream object is repositioned across rounds.
    #[test]
    fn repositioning_after_partial_reads_is_exact(
        run_seed in any::<u64>(),
        node in 0u32..1_000_000,
        first_round in 0u64..1_000_000,
        second_round in 0u64..1_000_000,
        partial in 0usize..16,
    ) {
        let streams = DecideStreams::new(run_seed);
        let mut rng = streams.decide_rng(node, first_round);
        for _ in 0..partial {
            rng.next_u32();
        }
        rng.set_block_pos(DecideStreams::decide_block(second_round));
        let mut fresh = streams.decide_rng(node, second_round);
        for i in 0..20 {
            prop_assert_eq!(rng.next_u32(), fresh.next_u32(), "draw {}", i);
        }
    }
}
