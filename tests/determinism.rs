//! Reproducibility guarantees: every run is a pure function of
//! `(graph, config, seed)`, and the parallel trial runner is oblivious to
//! scheduling. These properties are what make `EXPERIMENTS.md` numbers
//! regenerable.

use adhoc_radio::core::gossip::{run_ee_gossip, EeGossipConfig};
use adhoc_radio::graph::analysis::diameter_from;
use adhoc_radio::prelude::*;
use adhoc_radio::sim::parallel_trials;

fn fingerprint(out: &BroadcastOutcome) -> (Option<u64>, u64, u64, Vec<u32>) {
    (
        out.broadcast_time,
        out.rounds_executed,
        out.metrics.total_transmissions(),
        out.metrics.per_node().to_vec(),
    )
}

#[test]
fn every_broadcast_algorithm_is_seed_deterministic() {
    let n = 512;
    let p = 8.0 * (n as f64).ln() / n as f64;
    let g = gnp_directed(n, p, &mut derive_rng(1, b"det-g", 0));
    let d = diameter_from(&g, 0).expect("connected");

    for seed in [3u64, 99] {
        let a1 = run_ee_broadcast(&g, 0, &EeBroadcastConfig::for_gnp(n, p), seed);
        let a2 = run_ee_broadcast(&g, 0, &EeBroadcastConfig::for_gnp(n, p), seed);
        assert_eq!(fingerprint(&a1), fingerprint(&a2), "Alg1 seed {seed}");

        let g1 = run_general_broadcast(&g, 0, &GeneralBroadcastConfig::new(n, d), seed);
        let g2 = run_general_broadcast(&g, 0, &GeneralBroadcastConfig::new(n, d), seed);
        assert_eq!(fingerprint(&g1), fingerprint(&g2), "Alg3 seed {seed}");

        let c1 = run_cr_broadcast(&g, 0, &CrBroadcastConfig::new(n, d), seed);
        let c2 = run_cr_broadcast(&g, 0, &CrBroadcastConfig::new(n, d), seed);
        assert_eq!(fingerprint(&c1), fingerprint(&c2), "CR seed {seed}");

        let d1 = run_decay_broadcast(&g, 0, &DecayConfig::new(n, d), seed);
        let d2 = run_decay_broadcast(&g, 0, &DecayConfig::new(n, d), seed);
        assert_eq!(fingerprint(&d1), fingerprint(&d2), "Decay seed {seed}");

        let e1 = run_eg_broadcast(&g, 0, &EgBroadcastConfig::for_gnp(n, p), seed);
        let e2 = run_eg_broadcast(&g, 0, &EgBroadcastConfig::for_gnp(n, p), seed);
        assert_eq!(fingerprint(&e1), fingerprint(&e2), "EG seed {seed}");
    }
}

#[test]
fn different_seeds_give_different_runs() {
    let n = 512;
    let p = 8.0 * (n as f64).ln() / n as f64;
    let g = gnp_directed(n, p, &mut derive_rng(2, b"det-g", 0));
    let a = run_ee_broadcast(&g, 0, &EeBroadcastConfig::for_gnp(n, p), 1);
    let b = run_ee_broadcast(&g, 0, &EeBroadcastConfig::for_gnp(n, p), 2);
    assert_ne!(
        fingerprint(&a),
        fingerprint(&b),
        "distinct seeds should not collide on full fingerprints"
    );
}

#[test]
fn gossip_is_seed_deterministic() {
    let n = 256;
    let p = 8.0 * (n as f64).ln() / n as f64;
    let g = gnp_directed(n, p, &mut derive_rng(3, b"det-g", 0));
    let cfg = EeGossipConfig::for_gnp(n, p);
    let a = run_ee_gossip(&g, &cfg, 5);
    let b = run_ee_gossip(&g, &cfg, 5);
    assert_eq!(a.gossip_time, b.gossip_time);
    assert_eq!(a.metrics.per_node(), b.metrics.per_node());
}

#[test]
fn parallel_trials_are_schedule_independent() {
    // Run the same batch twice; rayon's scheduling must not leak into
    // results (each trial derives its own RNG from the trial seed).
    let n = 256;
    let p = 8.0 * (n as f64).ln() / n as f64;
    let batch = || {
        parallel_trials(16, 0xD5, |_, seed| {
            let g = gnp_directed(n, p, &mut derive_rng(seed, b"g", 0));
            let out = run_ee_broadcast(&g, 0, &EeBroadcastConfig::for_gnp(n, p), seed);
            (out.broadcast_time, out.metrics.total_transmissions())
        })
    };
    assert_eq!(batch(), batch());
}

#[test]
fn parallel_batches_have_bit_identical_metrics() {
    // Stronger than schedule independence: with the same base seed, two
    // whole `parallel_trials` batches must agree on the *complete*
    // fingerprint of every trial — broadcast time, round count, and the
    // full per-node transmission vector, bit for bit. Each trial builds
    // its own G(n,p) from the trial seed, so this also pins graph
    // generation into the reproducibility contract.
    let n = 192;
    let p = 8.0 * (n as f64).ln() / n as f64;
    let batch = || {
        parallel_trials(12, 0xBEEF, |i, seed| {
            let g = gnp_directed(n, p, &mut derive_rng(seed, b"batch-g", i as u64));
            let out = run_ee_broadcast(&g, 0, &EeBroadcastConfig::for_gnp(n, p), seed);
            fingerprint(&out)
        })
    };
    let first = batch();
    let second = batch();
    assert_eq!(first, second, "batches with equal base seed diverged");
    // Sanity on the batch itself: distinct trials actually differ (the
    // equality above would be vacuous if every trial collapsed to one
    // fingerprint).
    assert!(
        first.windows(2).any(|w| w[0] != w[1]),
        "all 12 trials produced identical fingerprints — trial seeds look broken"
    );
}

#[test]
fn graph_generation_is_independent_of_protocol_seed() {
    // The graph comes from its own labelled stream: runs with different
    // protocol seeds see the identical topology.
    let n = 128;
    let p = 0.1;
    let g1 = gnp_directed(n, p, &mut derive_rng(7, b"topo", 0));
    let g2 = gnp_directed(n, p, &mut derive_rng(7, b"topo", 0));
    assert_eq!(g1, g2);
}

/// Coin-flip transmitters: consumes RNG in `decide` *and* keeps awake
/// bookkeeping honest (sleep after transmitting twice), exercising every
/// engine phase the parallel scatter must not perturb.
struct CoinProto {
    informed: Vec<bool>,
    n_informed: usize,
    sent: Vec<u32>,
}

impl CoinProto {
    fn new(n: usize) -> Self {
        let mut informed = vec![false; n];
        informed[0] = true;
        CoinProto {
            informed,
            n_informed: 1,
            sent: vec![0; n],
        }
    }
}

impl adhoc_radio::sim::Protocol for CoinProto {
    type Msg = ();
    fn initially_awake(&self) -> Vec<u32> {
        vec![0]
    }
    fn decide(
        &mut self,
        node: u32,
        _round: u64,
        rng: &mut rand_chacha::ChaCha8Rng,
    ) -> adhoc_radio::sim::Action {
        use adhoc_radio::sim::Action;
        use rand::RngExt;
        if self.sent[node as usize] >= 2 {
            return Action::Sleep;
        }
        if self.informed[node as usize] && rng.random_bool(0.35) {
            self.sent[node as usize] += 1;
            Action::Transmit
        } else {
            Action::Silent
        }
    }
    fn payload(&self, _node: u32, _round: u64) -> Self::Msg {}
    fn on_receive(
        &mut self,
        node: u32,
        _from: u32,
        _round: u64,
        _msg: &Self::Msg,
        _rng: &mut rand_chacha::ChaCha8Rng,
    ) {
        if !self.informed[node as usize] {
            self.informed[node as usize] = true;
            self.n_informed += 1;
        }
    }
    fn is_complete(&self) -> bool {
        self.n_informed == self.informed.len()
    }
    fn informed_count(&self) -> usize {
        self.n_informed
    }
    fn active_count(&self) -> usize {
        self.n_informed
    }
}

#[test]
fn run_par_is_bit_identical_to_serial_across_families_and_channels() {
    // The intra-run parallel engine's contract: for every graph family,
    // half-duplex setting, and thread count, `run_par` reproduces the
    // serial run bit for bit — rounds, completion, the full trace, and
    // the per-node transmission vector. The scatter partition is by
    // receiver id range, so this is a property of the construction; the
    // test pins it across the exact surfaces the sweep grids use.
    use adhoc_radio::graph::GraphFamily;
    use adhoc_radio::sim::{run_protocol_par, EngineConfig};

    let n = 400;
    for (family, p) in [
        (GraphFamily::GnpDirected, 0.06),
        (
            GraphFamily::Geometric,
            adhoc_radio::graph::generate::GeoParams::with_expected_degree(n, 24.0).r_min,
        ),
    ] {
        let g = family.generate(n, p, &mut derive_rng(41, b"par-g", 0));
        for half_duplex in [true, false] {
            let run_at = |threads: usize| {
                let mut proto = CoinProto::new(n);
                let mut rng = derive_rng(42, b"par-run", 0);
                let cfg = EngineConfig {
                    half_duplex,
                    // Force the parallel path every round, even on this
                    // test-sized graph.
                    par_min_edges: 0,
                    ..EngineConfig::with_max_rounds(300).traced()
                };
                let res = run_protocol_par(&g, &mut proto, cfg, &mut rng, threads);
                (
                    res.rounds,
                    res.completed,
                    res.hit_round_cap,
                    res.metrics,
                    res.trace,
                    proto.informed,
                    proto.sent,
                )
            };
            let serial = run_at(1);
            for threads in [2, 4, 8] {
                assert_eq!(
                    serial,
                    run_at(threads),
                    "{} half_duplex={half_duplex} {threads} threads diverged",
                    family.label()
                );
            }
        }
    }
}

#[test]
fn run_par_energy_is_bit_identical_to_serial() {
    // Same contract under the energy overlay (the third channel
    // setting): model-based charges happen on the serial side of the
    // round, so thread count must not move a single joule — including
    // battery depletion, which feeds back into delivery semantics.
    use adhoc_radio::sim::{
        run_protocol_par_energy, Battery, EnergySession, EngineConfig, LinearRadio,
    };

    let n = 300;
    let g = gnp_directed(n, 0.08, &mut derive_rng(43, b"pare-g", 0));
    let run_at = |threads: usize| {
        let mut proto = CoinProto::new(n);
        let mut rng = derive_rng(44, b"pare-run", 0);
        let mut session = EnergySession::new(n, LinearRadio::with_listen_ratio(0.5), 9)
            .with_battery(Battery::uniform(n, 40.0));
        let cfg = EngineConfig {
            par_min_edges: 0,
            ..EngineConfig::with_max_rounds(200)
        };
        let res = run_protocol_par_energy(&g, &mut proto, cfg, &mut rng, &mut session, threads);
        (
            res.run.rounds,
            res.run.completed,
            res.run.metrics,
            res.energy.spent.clone(),
            res.energy.first_depletion_round,
            res.energy.depleted_nodes(),
            proto.informed,
        )
    };
    let serial = run_at(1);
    for threads in [2, 4, 8] {
        assert_eq!(serial, run_at(threads), "{threads} threads diverged");
    }
}

#[test]
fn run_fused_is_bit_identical_across_families_and_channels() {
    // The fused v2 engine's contract: decide, scatter, and delivery all
    // run inside the worker partitioning, and the per-node counter-based
    // streams make every phase order-independent — so for every graph
    // family, half-duplex setting, and thread count, `run_fused_par`
    // must reproduce the 1-thread fused run bit for bit (rounds, trace,
    // per-node transmission vector, informed set).
    use adhoc_radio::core::broadcast::windowed::{ProbSource, WindowedBroadcast, WindowedSpec};
    use adhoc_radio::graph::GraphFamily;
    use adhoc_radio::sim::EngineConfig;

    let n = 400;
    for (family, p) in [
        (GraphFamily::GnpDirected, 0.06),
        (
            GraphFamily::Geometric,
            adhoc_radio::graph::generate::GeoParams::with_expected_degree(n, 24.0).r_min,
        ),
    ] {
        let g = family.generate(n, p, &mut derive_rng(61, b"fuse-g", 0));
        for half_duplex in [true, false] {
            let run_at = |threads: usize| {
                let spec = WindowedSpec {
                    source: ProbSource::Fixed(0.3),
                    window: Some(6),
                    early_stop: true,
                };
                let mut proto = WindowedBroadcast::new(n, 0, spec);
                let cfg = EngineConfig {
                    half_duplex,
                    // Force both parallel paths every round, even on
                    // this test-sized graph.
                    par_min_edges: 0,
                    par_min_awake: 0,
                    ..EngineConfig::with_max_rounds(400).traced()
                };
                let res = adhoc_radio::sim::engine::run_protocol_fused(
                    &g,
                    &mut proto,
                    cfg.with_threads(threads),
                    0xF2,
                );
                let informed: Vec<u64> = (0..n as u32).map(|v| proto.informed_round(v)).collect();
                (
                    res.rounds,
                    res.completed,
                    res.hit_round_cap,
                    res.metrics,
                    res.trace,
                    informed,
                )
            };
            let serial = run_at(1);
            for threads in [2, 4, 8] {
                assert_eq!(
                    serial,
                    run_at(threads),
                    "{} half_duplex={half_duplex} {threads} threads diverged",
                    family.label()
                );
            }
        }
    }
}

#[test]
fn run_fused_energy_is_bit_identical_across_thread_counts() {
    // Same contract under the energy overlay: duty charges happen on the
    // serial side (commit + delivery) and battery depletion feeds back
    // into both the decide workers (dead events) and delivery — none of
    // which may depend on the thread count.
    use adhoc_radio::core::broadcast::windowed::{ProbSource, WindowedBroadcast, WindowedSpec};
    use adhoc_radio::sim::{Battery, EnergySession, EngineConfig, LinearRadio, Protocol};

    let n = 300;
    let g = gnp_directed(n, 0.08, &mut derive_rng(62, b"fusee-g", 0));
    let run_at = |threads: usize| {
        let spec = WindowedSpec {
            source: ProbSource::Fixed(0.35),
            window: None,
            early_stop: false,
        };
        let mut proto = WindowedBroadcast::new(n, 0, spec);
        let mut session = EnergySession::new(n, LinearRadio::with_listen_ratio(0.5), 13)
            .with_battery(Battery::uniform(n, 30.0));
        let cfg = EngineConfig {
            par_min_edges: 0,
            par_min_awake: 0,
            ..EngineConfig::with_max_rounds(150)
        };
        let res = adhoc_radio::sim::engine::run_protocol_fused_energy(
            &g,
            &mut proto,
            cfg.with_threads(threads),
            0xE7,
            &mut session,
        );
        (
            res.run.rounds,
            res.run.completed,
            res.run.metrics,
            res.energy.spent.clone(),
            res.energy.first_depletion_round,
            res.energy.depleted_nodes(),
            proto.informed_count(),
        )
    };
    let serial = run_at(1);
    for threads in [2, 4, 8] {
        assert_eq!(serial, run_at(threads), "{threads} threads diverged");
    }
}

#[test]
fn sweep_json_is_bit_identical_across_thread_counts() {
    // The sweep API's contract: the serialized report is a pure function
    // of the sweep description. `run` fans out over all available rayon
    // threads, `run_serial` is the 1-thread reference — the JSON bytes
    // must match exactly (cell order, float formatting, everything).
    use adhoc_radio::graph::GraphFamily;
    use adhoc_radio::sim::{Sweep, SweepCell};

    let mut sweep = Sweep::new("det", 0xD0_0D, 5);
    sweep.grid(
        &["ee_broadcast"],
        &[GraphFamily::GnpDirected],
        &[96, 160],
        &[0.08],
    );
    sweep.push(SweepCell::new(
        "ee_broadcast",
        GraphFamily::GnpUndirected,
        128,
        0.1,
    ));
    let runner = |cell: &SweepCell, graph: &adhoc_radio::graph::DiGraph, seed: u64| {
        run_ee_broadcast(graph, 0, &EeBroadcastConfig::for_gnp(cell.n, cell.p), seed).to_trial()
    };

    let parallel = sweep.run(runner).to_json_string();
    let serial = sweep.run_serial(runner).to_json_string();
    assert_eq!(
        parallel, serial,
        "sweep JSON must not depend on the thread count"
    );
    // And across repeated parallel executions (scheduling noise).
    assert_eq!(parallel, sweep.run(runner).to_json_string());
    // The report actually carries data (the equality is not vacuous).
    assert!(parallel.contains("\"cells\""));
    assert!(parallel.contains("gnp_undirected"));
}
