//! Cross-validation of the **v2 counter-based stream contract** against
//! the frozen v1 engines.
//!
//! A fused run (`run_fused`, per-node streams) and a v1 run (shared
//! serial stream) of the same `(protocol, seed)` follow *different*
//! trajectories by design — the stream layouts differ — so bit-identity
//! is the wrong cross-check. What must hold instead is **statistical
//! equivalence**: per-node coin flips with the same per-round
//! probabilities drive the same stochastic process, so over many trials
//! the distributions of rounds-to-completion and total messages must
//! agree. This suite runs ≥ 200 independent trials per
//! `algorithm × family` cell through both the v2 fused engine and the
//! deliberately naive v1 [`run_reference`] oracle (the slowest,
//! most-obviously-correct implementation of the radio semantics), and
//! asserts the means agree within 3 standard errors of the difference.
//!
//! Everything is seeded, so the suite is deterministic: it either always
//! passes or always fails for a given code state — a systematic bias in
//! the v2 decide/commit split (a phase boundary off by one, a wrong
//! passivation) shifts a mean by far more than 3 SE and trips it.

use adhoc_radio::core::broadcast::decay::DecayConfig;
use adhoc_radio::core::broadcast::ee_random::{EeBroadcastConfig, EeRandomBroadcast};
use adhoc_radio::core::broadcast::flood::FloodConfig;
use adhoc_radio::core::broadcast::windowed::WindowedBroadcast;
use adhoc_radio::graph::{DiGraph, GraphFamily};
use adhoc_radio::sim::engine::run_protocol_fused;
use adhoc_radio::sim::reference::run_reference;
use adhoc_radio::sim::{EngineConfig, RunResult};
use adhoc_radio::util::{derive_rng, split_seed};

const N: usize = 256;
const TRIALS: usize = 200;

/// Mean and (sample) variance.
fn mean_var(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, var)
}

/// Assert two trial populations agree within 3 standard errors of the
/// difference of means (plus an epsilon so two exactly-deterministic
/// populations compare by equality rather than 0 < 0).
fn assert_equivalent(label: &str, v1: &[f64], v2: &[f64]) {
    assert_eq!(v1.len(), v2.len());
    let (m1, var1) = mean_var(v1);
    let (m2, var2) = mean_var(v2);
    let se = (var1 / v1.len() as f64 + var2 / v2.len() as f64).sqrt();
    let tol = 3.0 * se + 1e-9;
    assert!(
        (m1 - m2).abs() <= tol,
        "{label}: v1 mean {m1:.3} vs v2 mean {m2:.3} differ by {:.3} > 3σ = {tol:.3} \
         (v1 var {var1:.3}, v2 var {var2:.3}, {} trials)",
        (m1 - m2).abs(),
        v1.len()
    );
}

/// The expected-degree convention shared with E18, scaled down.
fn degree(n: usize) -> f64 {
    8.0 * (n as f64).ln()
}

fn family_p(family: &GraphFamily, n: usize) -> f64 {
    match family {
        GraphFamily::GnpDirected => degree(n) / n as f64,
        _ => adhoc_radio::graph::generate::GeoParams::with_expected_degree(n, degree(n)).r_min,
    }
}

fn p_equiv(family: &GraphFamily, p: f64, n: usize, graph: &DiGraph) -> f64 {
    match family {
        GraphFamily::GnpDirected => p,
        _ => (graph.m() as f64 / n as f64) / n as f64,
    }
}

/// One algorithm's (v1, v2) runs on one trial graph. Builds a fresh
/// protocol per engine; v1 consumes the shared stream the v1 contract
/// prescribes (`derive_rng(seed, b"engine", 0)`), v2 derives its
/// per-node streams from the same trial seed.
fn both_runs(
    alg: &str,
    family: &GraphFamily,
    p: f64,
    graph: &DiGraph,
    seed: u64,
) -> (RunResult, RunResult) {
    match alg {
        "alg1" => {
            let cfg = EeBroadcastConfig::for_gnp(N, p_equiv(family, p, N, graph));
            let engine_cfg = EngineConfig::with_max_rounds(cfg.schedule_end() + 2);
            let mut p1 = EeRandomBroadcast::new(N, 0, cfg);
            let v1 = run_reference(
                graph,
                &mut p1,
                engine_cfg,
                &mut derive_rng(seed, b"engine", 0),
            );
            let mut p2 = EeRandomBroadcast::new(N, 0, cfg);
            let v2 = run_protocol_fused(graph, &mut p2, engine_cfg, seed);
            (v1, v2)
        }
        "flood" => {
            let q = (1.0 / degree(N)).min(1.0);
            let cfg = FloodConfig::with_prob(q, DecayConfig::new(N, 8).max_rounds());
            let engine_cfg = EngineConfig::with_max_rounds(cfg.max_rounds);
            let mut p1 = WindowedBroadcast::new(N, 0, cfg.spec());
            let v1 = run_reference(
                graph,
                &mut p1,
                engine_cfg,
                &mut derive_rng(seed, b"engine", 0),
            );
            let mut p2 = WindowedBroadcast::new(N, 0, cfg.spec());
            let v2 = run_protocol_fused(graph, &mut p2, engine_cfg, seed);
            (v1, v2)
        }
        "decay" => {
            let cfg = DecayConfig::new(N, 8);
            let engine_cfg = EngineConfig::with_max_rounds(cfg.max_rounds());
            let mut p1 = WindowedBroadcast::new(N, 0, cfg.spec());
            let v1 = run_reference(
                graph,
                &mut p1,
                engine_cfg,
                &mut derive_rng(seed, b"engine", 0),
            );
            let mut p2 = WindowedBroadcast::new(N, 0, cfg.spec());
            let v2 = run_protocol_fused(graph, &mut p2, engine_cfg, seed);
            (v1, v2)
        }
        other => unreachable!("unknown algorithm {other}"),
    }
}

fn equivalence_cell(alg: &str, family: GraphFamily) {
    let p = family_p(&family, N);
    let mut rounds1 = Vec::with_capacity(TRIALS);
    let mut rounds2 = Vec::with_capacity(TRIALS);
    let mut msgs1 = Vec::with_capacity(TRIALS);
    let mut msgs2 = Vec::with_capacity(TRIALS);
    for trial in 0..TRIALS {
        let seed = split_seed(
            0xEC_0DE,
            format!("{alg}-{}", family.label()).as_bytes(),
            trial as u64,
        );
        // Both engines see the identical topology; only the protocol
        // randomness contract differs.
        let graph = family.generate(N, p, &mut derive_rng(seed, b"eq-g", 0));
        let (v1, v2) = both_runs(alg, &family, p, &graph, seed);
        rounds1.push(v1.rounds as f64);
        rounds2.push(v2.rounds as f64);
        msgs1.push(v1.metrics.total_transmissions() as f64);
        msgs2.push(v2.metrics.total_transmissions() as f64);
    }
    let label = format!("{alg} on {}", family.label());
    assert_equivalent(&format!("{label}: rounds"), &rounds1, &rounds2);
    assert_equivalent(&format!("{label}: messages"), &msgs1, &msgs2);
}

#[test]
fn alg1_v2_matches_v1_reference_on_gnp() {
    equivalence_cell("alg1", GraphFamily::GnpDirected);
}

#[test]
fn alg1_v2_matches_v1_reference_on_geometric() {
    equivalence_cell("alg1", GraphFamily::Geometric);
}

#[test]
fn flood_v2_matches_v1_reference_on_gnp() {
    equivalence_cell("flood", GraphFamily::GnpDirected);
}

#[test]
fn flood_v2_matches_v1_reference_on_geometric() {
    equivalence_cell("flood", GraphFamily::Geometric);
}

#[test]
fn decay_v2_matches_v1_reference_on_gnp() {
    equivalence_cell("decay", GraphFamily::GnpDirected);
}

#[test]
fn decay_v2_matches_v1_reference_on_geometric() {
    equivalence_cell("decay", GraphFamily::Geometric);
}

#[test]
fn the_equivalence_test_has_teeth() {
    // Sanity that 3σ at 200 trials actually detects a real protocol
    // difference: flood at q vs flood at q/2 must *fail* equivalence on
    // messages. (Guards against the suite silently comparing nothing.)
    let family = GraphFamily::GnpDirected;
    let p = family_p(&family, N);
    let mut a = Vec::new();
    let mut b = Vec::new();
    for trial in 0..200 {
        let seed = split_seed(0x7EE7, b"teeth", trial);
        let graph = family.generate(N, p, &mut derive_rng(seed, b"eq-g", 0));
        let q = (1.0 / degree(N)).min(1.0);
        for (qq, out) in [(q, &mut a), (q / 2.0, &mut b)] {
            let cfg = FloodConfig::with_prob(qq, 2_000);
            let mut proto = WindowedBroadcast::new(N, 0, cfg.spec());
            let run = run_protocol_fused(
                &graph,
                &mut proto,
                EngineConfig::with_max_rounds(cfg.max_rounds),
                seed,
            );
            out.push(run.rounds as f64);
        }
    }
    let (m1, v1) = mean_var(&a);
    let (m2, v2) = mean_var(&b);
    let se = (v1 / a.len() as f64 + v2 / b.len() as f64).sqrt();
    assert!(
        (m1 - m2).abs() > 3.0 * se,
        "halving q should visibly change rounds: {m1:.2} vs {m2:.2} (3σ = {:.2})",
        3.0 * se
    );
}
