//! CSR-vs-implicit topology equivalence.
//!
//! The implicit backends (`ImplicitGrid`, `ImplicitGnp`) answer the
//! same neighbor queries as a materialized CSR, so a run over either
//! must be **bit-identical** — not statistically equivalent, identical
//! in every field — to the same run over the CSR oracle obtained by
//! materializing the backend. This holds for both determinism
//! contracts: v1 runs draw from one serial stream in poll order, v2
//! fused runs from per-node counter streams; neither consults the
//! topology representation, only the edge *set*.
//!
//! The suite checks three layers:
//! 1. neighbor sets: implicit queries == materialized CSR rows, and
//!    `ImplicitGrid::generate` == `random_geometric` for equal seeds
//!    (including radii in (1/3, 0.5], the wrapped-scan dedup regime);
//! 2. whole runs: identical `RunResult`s for Algorithm 1 / flood /
//!    decay at n ≤ 2¹², across v1/fused and serial/parallel engines;
//! 3. scale (`#[ignore]`d, release-only): n = 2²⁴ rounds on both
//!    implicit backends, bit-identical across thread counts, with no
//!    O(m) materialization anywhere.

use adhoc_radio::core::broadcast::decay::DecayConfig;
use adhoc_radio::core::broadcast::ee_random::{EeBroadcastConfig, EeRandomBroadcast};
use adhoc_radio::core::broadcast::flood::FloodConfig;
use adhoc_radio::core::broadcast::windowed::WindowedBroadcast;
use adhoc_radio::graph::{DiGraph, ImplicitGnp, ImplicitGrid, NodeId, Topology};
use adhoc_radio::sim::engine::{run_protocol, run_protocol_fused, run_protocol_par};
use adhoc_radio::sim::{EngineConfig, RunResult};
use adhoc_radio::util::{derive_rng, split_seed};

fn row<T: Topology>(t: &T, u: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    t.for_each_out(u, |v| out.push(v));
    out.sort_unstable();
    out
}

/// Neighbor-set oracle: every implicit row equals the materialized row.
fn assert_rows_match<T: Topology>(t: &T, g: &DiGraph, label: &str) {
    assert_eq!(Topology::n(t), g.n(), "{label}: node count");
    for u in 0..g.n() as NodeId {
        assert_eq!(row(t, u), g.out_neighbors(u), "{label}: row {u}");
    }
}

#[test]
fn implicit_grid_rows_match_csr_generator_and_materialization() {
    // Radii straddle the grid regimes: fine grid, cells == 2 (the
    // double-visit bug's home), and the torus bound cells == 1 cap.
    for (n, r) in [(512, 0.05), (256, 0.4), (128, 0.5)] {
        let seed = split_seed(2024, b"grid-eq", n as u64);
        let (g, pos) =
            adhoc_radio::graph::generate::random_geometric(n, r, &mut derive_rng(seed, b"geo", 0));
        let t = ImplicitGrid::generate(n, r, &mut derive_rng(seed, b"geo", 0));
        assert_eq!(t.positions(), &pos[..], "positions must replay identically");
        assert_rows_match(&t, &g, "grid vs random_geometric");
        assert_rows_match(&t, &t.materialize(), "grid vs materialize");
    }
}

#[test]
fn implicit_gnp_rows_match_materialization() {
    for (n, p) in [(512, 0.02), (1024, 0.008), (64, 0.5)] {
        let t = ImplicitGnp::new(n, p, split_seed(7, b"gnp-eq", n as u64));
        assert_rows_match(&t, &t.materialize(), "gnp vs materialize");
    }
}

/// Engine config exercising the parallel paths even at toy sizes.
fn par_cfg(max_rounds: u64, threads: usize) -> EngineConfig {
    let mut cfg = EngineConfig::with_max_rounds(max_rounds).with_threads(threads);
    cfg.par_min_edges = 0;
    cfg.par_min_edges_implicit = 0;
    cfg.par_min_awake = 0;
    cfg
}

/// Run the three e18 algorithms over a topology, v1 + fused, at the
/// given thread count, returning all RunResults.
fn all_runs<T: Topology>(t: &T, d: f64, run_seed: u64, threads: usize) -> Vec<RunResult> {
    let n = Topology::n(t);
    let q = 1.0 / d;
    let mut out = Vec::new();

    // Algorithm 1 (fused): the paper's p-parameterised config.
    let cfg = EeBroadcastConfig::for_gnp(n, d / n as f64);
    let mut alg1 = EeRandomBroadcast::new(n, 0, cfg);
    out.push(run_protocol_fused(
        t,
        &mut alg1,
        par_cfg(cfg.schedule_end() + 2, threads),
        run_seed,
    ));

    // Flood and Decay (fused) through the windowed protocol.
    let fcfg = FloodConfig::with_prob(q, 400);
    let mut flood = WindowedBroadcast::new(n, 0, fcfg.spec());
    out.push(run_protocol_fused(
        t,
        &mut flood,
        par_cfg(400, threads),
        split_seed(run_seed, b"flood", 0),
    ));

    let dcfg = DecayConfig::new(n, 8);
    let mut decay = WindowedBroadcast::new(n, 0, dcfg.spec());
    out.push(run_protocol_fused(
        t,
        &mut decay,
        par_cfg(dcfg.max_rounds(), threads),
        split_seed(run_seed, b"decay", 0),
    ));

    // v1 contract too: serial shared stream, flood protocol.
    let mut flood_v1 = WindowedBroadcast::new(n, 0, fcfg.spec());
    let mut rng = derive_rng(run_seed, b"v1", 0);
    if threads == 1 {
        out.push(run_protocol(t, &mut flood_v1, par_cfg(400, 1), &mut rng));
    } else {
        out.push(run_protocol_par(
            t,
            &mut flood_v1,
            par_cfg(400, 1),
            &mut rng,
            threads,
        ));
    }
    out
}

#[test]
fn runs_are_bit_identical_implicit_grid_vs_csr() {
    let n = 1 << 10;
    let d = 24.0;
    let t = ImplicitGrid::with_expected_degree(n, d, &mut derive_rng(11, b"run-eq", 0));
    let g = t.materialize();
    for threads in [1usize, 4] {
        let implicit = all_runs(&t, d, 91, threads);
        let csr = all_runs(&g, d, 91, threads);
        assert_eq!(implicit, csr, "grid vs CSR at {threads} threads");
    }
    // And across thread counts on the implicit backend itself.
    assert_eq!(all_runs(&t, d, 91, 1), all_runs(&t, d, 91, 4));
}

#[test]
fn runs_are_bit_identical_implicit_gnp_vs_csr() {
    let n = 1 << 12;
    let d = 16.0;
    let t = ImplicitGnp::with_expected_degree(n, d, split_seed(5, b"run-eq", 1));
    let g = t.materialize();
    for threads in [1usize, 4] {
        let implicit = all_runs(&t, d, 92, threads);
        let csr = all_runs(&g, d, 92, threads);
        assert_eq!(implicit, csr, "gnp vs CSR at {threads} threads");
    }
    assert_eq!(all_runs(&t, d, 92, 1), all_runs(&t, d, 92, 4));
}

#[test]
fn informative_runs_actually_inform() {
    // Guard against the equivalence tests passing vacuously on empty
    // graphs: the flood run must actually spread.
    let t = ImplicitGnp::with_expected_degree(1 << 10, 16.0, split_seed(5, b"run-eq", 2));
    let fcfg = FloodConfig::with_prob(1.0 / 16.0, 400);
    let mut flood = WindowedBroadcast::new(1 << 10, 0, fcfg.spec());
    let run = run_protocol_fused(&t, &mut flood, par_cfg(400, 1), 17);
    assert!(run.completed, "flood should complete on a connected G(n,p)");
}

/// Release-only acceptance at the CSR memory wall: n = 2²⁴ on both
/// implicit backends — far past where a materialized graph would need
/// ~2³¹ edge slots ((8·ln n)·2²⁴ ≈ 2.2×10⁹ ≫ the 2²⁶ prealloc budget).
/// A bounded number of flood rounds must run, allocate only O(n), and
/// be bit-identical across thread counts.
///
/// `#[ignore]`: ~½ GiB resident and ~30 min on a single core (four
/// full-scale runs; the 8-thread ones pay the receiver-range
/// partition's per-worker row replay with no cores to spread it over —
/// multi-core hosts finish proportionally faster). Run with
/// `cargo test --release -- --ignored topology_scale`.
#[test]
#[ignore = "release-scale acceptance run (n = 2^24)"]
fn topology_scale_2_24_bit_identical_across_threads() {
    let n = 1usize << 24;
    let d = 8.0 * (n as f64).ln();
    let rounds = 30u64;
    // The paper's q = 1/d would leave the lone source silent for ~d
    // expected rounds — useless inside a 30-round budget. q = 1/2 makes
    // the source transmit w.h.p. and keeps per-round work bounded (the
    // informed set stalls behind collisions, which is fine: this test
    // measures scale + bit-identity, not completion).
    let q = 0.5;

    // ImplicitGnp: O(1) graph memory.
    let t = ImplicitGnp::with_expected_degree(n, d, split_seed(99, b"scale", 0));
    let mut runs = Vec::new();
    for threads in [1usize, 8] {
        let fcfg = FloodConfig::with_prob(q, rounds);
        let mut flood = WindowedBroadcast::new(n, 0, fcfg.spec());
        runs.push(run_protocol_fused(
            &t,
            &mut flood,
            EngineConfig::with_max_rounds(rounds).with_threads(threads),
            313,
        ));
    }
    assert_eq!(runs[0], runs[1], "gnp @ 2^24: thread counts diverged");
    assert!(runs[0].metrics.total_transmissions() > 0);

    // ImplicitGrid: O(n) positions + buckets.
    let t = ImplicitGrid::with_expected_degree(n, d, &mut derive_rng(99, b"scale-grid", 0));
    let mut runs = Vec::new();
    for threads in [1usize, 8] {
        let fcfg = FloodConfig::with_prob(q, rounds);
        let mut flood = WindowedBroadcast::new(n, 0, fcfg.spec());
        runs.push(run_protocol_fused(
            &t,
            &mut flood,
            EngineConfig::with_max_rounds(rounds).with_threads(threads),
            313,
        ));
    }
    assert_eq!(runs[0], runs[1], "grid @ 2^24: thread counts diverged");
    assert!(runs[0].metrics.total_transmissions() > 0);
}
