//! Scatter-strategy bit-identity: the parallel scatter's partition
//! choice — serial, receiver-range, or transmitter-sharded — and its
//! thread count are pure performance knobs. For every backend
//! ({CSR, ImplicitGrid, ImplicitGnp}), half-duplex setting, strategy,
//! and thread count in {1, 2, 4, 8}, the full `RunResult` (rounds,
//! metrics, trace) and the protocol's observable state must equal the
//! serial run bit for bit.
//!
//! The adversarial companion pins the transmitter-sharded merge where
//! it could plausibly break: shard boundaries landing *mid-collision*,
//! with two or more transmitters hitting one receiver from different
//! shards.

use adhoc_radio::prelude::*;
use adhoc_radio::sim::{run_protocol_par, ScatterStrategy};
use adhoc_radio::util::split_seed;
use proptest::prelude::*;

/// Coin-flip transmitters with a small send budget (copied from the
/// determinism suite's idiom): consumes the shared serial RNG in
/// decide/delivery order, so any scatter divergence — ordering,
/// collision marking, touched-list merge — cascades into different
/// rounds, metrics, and traces.
struct CoinProto {
    informed: Vec<bool>,
    n_informed: usize,
    sent: Vec<u32>,
}

impl CoinProto {
    fn new(n: usize) -> Self {
        let mut informed = vec![false; n];
        informed[0] = true;
        CoinProto {
            informed,
            n_informed: 1,
            sent: vec![0; n],
        }
    }
}

impl adhoc_radio::sim::Protocol for CoinProto {
    type Msg = ();
    fn initially_awake(&self) -> Vec<u32> {
        vec![0]
    }
    fn decide(
        &mut self,
        node: u32,
        _round: u64,
        rng: &mut rand_chacha::ChaCha8Rng,
    ) -> adhoc_radio::sim::Action {
        use adhoc_radio::sim::Action;
        use rand::RngExt;
        if self.sent[node as usize] >= 3 {
            return Action::Sleep;
        }
        if self.informed[node as usize] && rng.random_bool(0.4) {
            self.sent[node as usize] += 1;
            Action::Transmit
        } else {
            Action::Silent
        }
    }
    fn payload(&self, _node: u32, _round: u64) -> Self::Msg {}
    fn on_receive(
        &mut self,
        node: u32,
        _from: u32,
        _round: u64,
        _msg: &Self::Msg,
        _rng: &mut rand_chacha::ChaCha8Rng,
    ) {
        if !self.informed[node as usize] {
            self.informed[node as usize] = true;
            self.n_informed += 1;
        }
    }
    fn is_complete(&self) -> bool {
        self.n_informed == self.informed.len()
    }
    fn informed_count(&self) -> usize {
        self.n_informed
    }
    fn active_count(&self) -> usize {
        self.n_informed
    }
}

/// Engine config pinning one scatter strategy, with both edge-volume
/// thresholds zeroed so even toy graphs take the parallel paths.
fn cfg(strategy: ScatterStrategy, half_duplex: bool) -> EngineConfig {
    EngineConfig {
        half_duplex,
        par_min_edges: 0,
        par_min_edges_implicit: 0,
        ..EngineConfig::with_max_rounds(200).traced()
    }
    .with_scatter_strategy(strategy)
}

type Fingerprint = (
    u64,
    bool,
    bool,
    adhoc_radio::sim::Metrics,
    Option<adhoc_radio::sim::Trace>,
    Vec<bool>,
    Vec<u32>,
);

fn run_one<T: Topology>(
    t: &T,
    strategy: ScatterStrategy,
    half_duplex: bool,
    threads: usize,
    seed: u64,
) -> Fingerprint {
    let mut proto = CoinProto::new(Topology::n(t));
    let mut rng = derive_rng(seed, b"scatter-run", 0);
    let res = run_protocol_par(t, &mut proto, cfg(strategy, half_duplex), &mut rng, threads);
    (
        res.rounds,
        res.completed,
        res.hit_round_cap,
        res.metrics,
        res.trace,
        proto.informed,
        proto.sent,
    )
}

/// Every (strategy, thread count) must reproduce the serial run.
fn check_all_strategies<T: Topology>(t: &T, half_duplex: bool, seed: u64, label: &str) {
    let serial = run_one(t, ScatterStrategy::Auto, half_duplex, 1, seed);
    for strategy in [
        ScatterStrategy::Auto,
        ScatterStrategy::ReceiverRange,
        ScatterStrategy::TransmitterShard,
    ] {
        for threads in [1usize, 2, 4, 8] {
            let got = run_one(t, strategy, half_duplex, threads, seed);
            assert_eq!(
                serial, got,
                "{label} half_duplex={half_duplex} {strategy:?} x {threads} threads diverged"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Bit-identity across every backend × strategy × thread count ×
    /// half-duplex: the scatter plan cannot influence `RunResult`.
    #[test]
    fn scatter_strategy_and_threads_cannot_influence_results(
        n in 48usize..160,
        d in 6.0f64..14.0,
        seed in 0u64..1_000_000,
        half_duplex in any::<bool>(),
    ) {
        let csr = gnp_directed(n, (d / n as f64).min(0.9), &mut derive_rng(seed, b"sc-g", 0));
        check_all_strategies(&csr, half_duplex, seed, "csr");

        let grid = ImplicitGrid::with_expected_degree(n, d, &mut derive_rng(seed, b"sc-g", 1));
        check_all_strategies(&grid, half_duplex, seed, "grid");

        let gnp = ImplicitGnp::with_expected_degree(n, d, split_seed(seed, b"sc-g", 2));
        check_all_strategies(&gnp, half_duplex, seed, "gnp");
    }
}

/// One-round storm that records exactly who delivered to whom.
struct ListedStorm {
    is_tx: Vec<bool>,
    heard: Vec<Vec<u32>>,
}

impl adhoc_radio::sim::Protocol for ListedStorm {
    type Msg = ();
    fn initially_awake(&self) -> Vec<u32> {
        (0..self.is_tx.len() as u32).collect()
    }
    fn decide(
        &mut self,
        node: u32,
        _round: u64,
        _rng: &mut rand_chacha::ChaCha8Rng,
    ) -> adhoc_radio::sim::Action {
        if self.is_tx[node as usize] {
            adhoc_radio::sim::Action::Transmit
        } else {
            adhoc_radio::sim::Action::Silent
        }
    }
    fn payload(&self, _node: u32, _round: u64) -> Self::Msg {}
    fn on_receive(
        &mut self,
        node: u32,
        from: u32,
        _round: u64,
        _msg: &Self::Msg,
        _rng: &mut rand_chacha::ChaCha8Rng,
    ) {
        self.heard[node as usize].push(from);
    }
    fn is_complete(&self) -> bool {
        false
    }
    fn informed_count(&self) -> usize {
        0
    }
    fn active_count(&self) -> usize {
        self.is_tx.len()
    }
}

/// Adversarial shard boundaries: transmitters 0..8 all transmit in one
/// round, so with 2/4/8 shard workers the shard cuts land *inside*
/// every multi-hit receiver's transmitter set. The merge must still
/// resolve each receiver to the serial outcome: collision where ≥ 2
/// transmitters hit (even from different shards), delivery from the
/// earliest transmitter where exactly one hit.
#[test]
fn transmitter_shard_boundaries_mid_collision_resolve_serially() {
    let n_tx = 8u32;
    let n = 14usize;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    // Receiver 9: hit by ALL eight transmitters — every shard cut at
    // t ∈ {2, 4, 8} splits this collision across shards.
    for u in 0..n_tx {
        edges.push((u, 9));
    }
    // Receiver 10: exactly one hit (transmitter 0) — clean delivery.
    edges.push((0, 10));
    // Receiver 11: exactly one hit from the *last* shard.
    edges.push((7, 11));
    // Receiver 12: two hits from the first and last shard — a
    // collision whose members never share a worker.
    edges.push((0, 12));
    edges.push((7, 12));
    // Receiver 13: two hits from within one shard at t = 4.
    edges.push((6, 13));
    edges.push((7, 13));
    edges.sort_unstable();
    let g = DiGraph::from_edges(n, &edges);

    let run_at = |strategy: ScatterStrategy, threads: usize| {
        let mut proto = ListedStorm {
            is_tx: (0..n).map(|u| (u as u32) < n_tx).collect(),
            heard: vec![Vec::new(); n],
        };
        let mut rng = derive_rng(77, b"storm", 0);
        let cfg = EngineConfig {
            par_min_edges: 0,
            par_min_edges_implicit: 0,
            ..EngineConfig::with_max_rounds(1)
        }
        .with_scatter_strategy(strategy);
        let res = run_protocol_par(&g, &mut proto, cfg, &mut rng, threads);
        (res.metrics, proto.heard)
    };

    let (serial_metrics, serial_heard) = run_at(ScatterStrategy::Auto, 1);
    // Semantic ground truth, checked once on the serial oracle.
    assert!(serial_heard[9].is_empty(), "8-way collision must deliver nothing");
    assert!(serial_heard[12].is_empty(), "cross-shard 2-way collision");
    assert!(serial_heard[13].is_empty(), "intra-shard 2-way collision");
    assert_eq!(serial_heard[10], vec![0], "single hit delivers its source");
    assert_eq!(serial_heard[11], vec![7], "single hit from the last shard");

    for strategy in [ScatterStrategy::TransmitterShard, ScatterStrategy::ReceiverRange] {
        for threads in [2usize, 4, 8] {
            let got = run_at(strategy, threads);
            assert_eq!(
                (&serial_metrics, &serial_heard),
                (&got.0, &got.1),
                "{strategy:?} x {threads} threads diverged"
            );
        }
    }
}
