//! Property-based tests over the whole stack: random topologies, random
//! densities, random seeds — the invariants must hold for *all* of them.

use adhoc_radio::core::gossip::{run_ee_gossip, EeGossipConfig};
use adhoc_radio::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Algorithm 1 never lets any node transmit twice — on any G(n,p),
    /// any density (both Phase-2 regimes), any seed, either Phase-2
    /// reading.
    #[test]
    fn alg1_at_most_one_transmission(
        n in 16usize..400,
        dens in 0.02f64..0.5,
        seed in 0u64..1_000_000,
        literal_phase2 in any::<bool>(),
    ) {
        let p = dens.max(2.5 / n as f64); // keep d = np > 2
        let g = gnp_directed(n, p, &mut derive_rng(seed, b"prop-g", 0));
        let mut cfg = EeBroadcastConfig::for_gnp(n, p);
        cfg.phase2_all_passive = literal_phase2;
        let out = run_ee_broadcast(&g, 0, &cfg, seed);
        prop_assert!(out.max_msgs_per_node() <= 1);
        // Energy accounting is consistent.
        let per_node_sum: u64 = out.metrics.per_node().iter().map(|&c| c as u64).sum();
        prop_assert_eq!(per_node_sum, out.metrics.total_transmissions());
    }

    /// Broadcast outcomes are internally consistent for the windowed
    /// family: informed counts, completion rounds and round counts agree.
    #[test]
    fn windowed_outcome_consistency(
        n in 8usize..200,
        q in 0.01f64..1.0,
        window in prop::option::of(1u64..64),
        seed in 0u64..1_000_000,
    ) {
        let g = gnp_undirected(n, (4.0 / n as f64).min(0.9), &mut derive_rng(seed, b"prop-g", 1));
        let cfg = match window {
            Some(w) => FloodConfig::retiring(q, w, 300),
            None => FloodConfig::with_prob(q, 300),
        };
        let out = run_flood_broadcast(&g, 0, &cfg, seed);
        prop_assert!(out.informed >= 1, "source is always informed");
        prop_assert!(out.informed <= n);
        prop_assert_eq!(out.all_informed, out.informed == n);
        if let Some(t) = out.broadcast_time {
            prop_assert!(t <= out.rounds_executed);
            prop_assert!(out.all_informed);
        }
    }

    /// Gossip: every node retains its own rumor, knowledge is monotone,
    /// and per-node energy never exceeds the schedule length.
    #[test]
    fn gossip_conservation(
        n in 16usize..150,
        delta in 4.0f64..10.0,
        seed in 0u64..1_000_000,
    ) {
        let p = (delta * (n as f64).ln() / n as f64).min(0.9);
        let g = gnp_directed(n, p, &mut derive_rng(seed, b"prop-g", 2));
        let mut cfg = EeGossipConfig::for_gnp(n, p);
        cfg.gamma = 2.0; // short schedule: completion NOT required here
        cfg.early_stop = false;
        let out = run_ee_gossip(&g, &cfg, seed);
        prop_assert!(out.min_known >= 1, "own rumor must never be lost");
        prop_assert!(out.nodes_complete <= n);
        prop_assert!(
            out.max_msgs_per_node() as u64 <= cfg.schedule_rounds(),
            "cannot transmit more often than rounds exist"
        );
    }

    /// Algorithm 3's structural guarantees on arbitrary connected
    /// topologies: max messages per node ≤ window length; informed set
    /// includes the source; determinism.
    #[test]
    fn alg3_window_bounds_energy(
        spine in 2usize..24,
        legs in 0usize..6,
        seed in 0u64..1_000_000,
    ) {
        let g = caterpillar(spine, legs);
        let n = g.n();
        let d = adhoc_radio::graph::analysis::diameter_from(&g, 0).expect("connected");
        let cfg = GeneralBroadcastConfig::new(n, d);
        let out = run_general_broadcast(&g, 0, &cfg, seed);
        prop_assert!(u64::from(out.max_msgs_per_node()) <= cfg.window());
        prop_assert!(out.informed >= 1);
    }

    /// The trial runner's seeds are collision-free across indices.
    #[test]
    fn trial_seeds_unique(base in any::<u64>()) {
        let seeds = adhoc_radio::sim::parallel_trials(64, base, |_, s| s);
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), seeds.len());
    }

    /// Implicit G(n,p) ≡ its materialized CSR — rows, range tilings and
    /// degree hints — for any (n, p, seed).
    #[test]
    fn implicit_gnp_equals_csr(
        n in 2usize..300,
        p in 0.0f64..0.3,
        seed in any::<u64>(),
    ) {
        let t = ImplicitGnp::new(n, p, seed);
        let g = t.materialize();
        prop_assert_eq!(Topology::n(&t), g.n());
        let mid = (n / 2) as NodeId;
        for u in 0..n as NodeId {
            let mut implicit = Vec::new();
            t.for_each_out(u, |v| implicit.push(v));
            prop_assert_eq!(&implicit, &g.out_neighbors(u).to_vec());
            // Two half-ranges tile the full row, in order.
            let mut tiled = Vec::new();
            t.for_each_out_range(u, 0, mid, |v| tiled.push(v));
            t.for_each_out_range(u, mid, n as NodeId, |v| tiled.push(v));
            prop_assert_eq!(tiled, implicit);
        }
    }

    /// Implicit geometric grid ≡ the materializing generator for the
    /// same seed — any radius, including the wrapped-scan regime
    /// r ∈ (1/3, 0.5] where the dedup fix is load-bearing.
    #[test]
    fn implicit_grid_equals_csr(
        n in 2usize..200,
        r in 0.02f64..=0.5,
        seed in any::<u64>(),
    ) {
        let (g, pos) = random_geometric(n, r, &mut derive_rng(seed, b"prop-topo", 0));
        let t = ImplicitGrid::generate(n, r, &mut derive_rng(seed, b"prop-topo", 0));
        prop_assert_eq!(t.positions(), &pos[..]);
        for u in 0..n as NodeId {
            let mut implicit = Vec::new();
            t.for_each_out(u, |v| implicit.push(v));
            implicit.sort_unstable();
            prop_assert_eq!(implicit, g.out_neighbors(u).to_vec());
        }
    }
}
