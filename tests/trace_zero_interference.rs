//! Zero-interference property of the trace hook: a traced run must be
//! **bit-identical** to its untraced twin — same rounds, same metrics,
//! same aggregate trace — for every protocol family, topology family,
//! engine contract (v1 serial RNG vs fused v2 streams), and thread
//! count. The sink only observes; it never touches the protocol RNG.
//!
//! Each case also closes the loop: the traced run records to an
//! in-memory `.rtrc`, and a third identical run re-driven through a
//! [`ReplayVerifier`] must match the recording event for event.

use adhoc_radio::core::broadcast::ee_random::EeRandomBroadcast;
use adhoc_radio::core::broadcast::windowed::WindowedBroadcast;
use adhoc_radio::prelude::*;
use adhoc_radio::trace::Recording;
use proptest::prelude::*;

/// Engine config forcing the parallel decide/scatter paths even on the
/// small graphs proptest generates.
fn cfg(threads: usize) -> EngineConfig {
    EngineConfig {
        par_min_edges: 0,
        par_min_awake: 0,
        ..EngineConfig::with_max_rounds(300).traced()
    }
    .with_threads(threads)
}

/// G(n,p) or geometric (unit-disk) topology, seeded.
fn graph_for(geometric: bool, n: usize, seed: u64) -> DiGraph {
    if geometric {
        let r = (2.5 * (n as f64).ln() / n as f64).sqrt().min(0.5);
        random_geometric(n, r, &mut derive_rng(seed, b"zi-geo", 0)).0
    } else {
        let p = (8.0 * (n as f64).ln() / n as f64).min(0.5);
        gnp_directed(n, p, &mut derive_rng(seed, b"zi-gnp", 0))
    }
}

/// One v1 case: untraced vs traced vs replayed, all with identical
/// `(protocol, rng, config)` inputs.
fn check_v1<P: Protocol>(mk: impl Fn() -> P, g: &DiGraph, seed: u64, threads: usize) {
    let c = cfg(threads);
    let plain = {
        let mut p = mk();
        let mut rng = derive_rng(seed, b"zi-run", 1);
        Engine::new(g, c).run(&mut p, &mut rng)
    };
    let mut bytes = Vec::new();
    let traced = {
        let header = RunHeader::new(seed, "v1", "prop");
        let mut sink = RecordingSink::new(&mut bytes, &header).unwrap();
        let mut p = mk();
        let mut rng = derive_rng(seed, b"zi-run", 1);
        let res = Engine::new(g, c).run_traced(&mut p, &mut rng, &mut sink);
        sink.finish(res.completed).unwrap();
        res
    };
    assert_eq!(&plain, &traced, "tracing changed the run");
    let rec = Recording::from_bytes(&bytes).unwrap();
    let mut verifier = ReplayVerifier::new(&rec);
    {
        let mut p = mk();
        let mut rng = derive_rng(seed, b"zi-run", 1);
        let _ = Engine::new(g, c).run_traced(&mut p, &mut rng, &mut verifier);
    }
    let verified = verifier.finish();
    assert!(
        verified.is_ok(),
        "replay diverged: {}",
        verified.unwrap_err()
    );
}

/// One fused-v2 case: untraced vs traced vs replayed.
fn check_fused<P: FusedDecide>(mk: impl Fn() -> P, g: &DiGraph, seed: u64, threads: usize) {
    let c = cfg(threads);
    let plain = {
        let mut p = mk();
        Engine::new(g, c).run_fused(&mut p, seed)
    };
    let mut bytes = Vec::new();
    let traced = {
        let header = RunHeader::new(seed, "v2", "prop");
        let mut sink = RecordingSink::new(&mut bytes, &header).unwrap();
        let mut p = mk();
        let res = Engine::new(g, c).run_fused_traced(&mut p, seed, &mut sink);
        sink.finish(res.completed).unwrap();
        res
    };
    assert_eq!(&plain, &traced, "tracing changed the fused run");
    let rec = Recording::from_bytes(&bytes).unwrap();
    let mut verifier = ReplayVerifier::new(&rec);
    {
        let mut p = mk();
        let _ = Engine::new(g, c).run_fused_traced(&mut p, seed, &mut verifier);
    }
    let verified = verifier.finish();
    assert!(
        verified.is_ok(),
        "replay diverged: {}",
        verified.unwrap_err()
    );
}

/// One energy-overlay case (v1 + fused), with batteries small enough to
/// see depletion events on some runs.
fn check_energy<P: FusedDecide>(mk: impl Fn() -> P, g: &DiGraph, seed: u64, threads: usize) {
    let n = g.n();
    let c = cfg(threads);
    let session = || {
        EnergySession::new(n, LinearRadio::with_listen_ratio(0.5), 9)
            .with_battery(Battery::uniform(n, 12.0))
    };
    // v1 contract.
    let plain = {
        let mut p = mk();
        let mut rng = derive_rng(seed, b"zi-en", 2);
        Engine::new(g, c).run_energy(&mut p, &mut rng, &mut session())
    };
    let traced = {
        let mut sink = RingSink::new(64);
        let mut p = mk();
        let mut rng = derive_rng(seed, b"zi-en", 2);
        Engine::new(g, c).run_energy_traced(&mut p, &mut rng, &mut session(), &mut sink)
    };
    assert_eq!(&plain.run, &traced.run, "tracing changed the energy run");
    assert_eq!(&plain.energy, &traced.energy);
    assert_eq!(plain.stopped_on_depletion, traced.stopped_on_depletion);
    // Fused contract.
    let plain_f = {
        let mut p = mk();
        Engine::new(g, c).run_fused_energy(&mut p, seed, &mut session())
    };
    let traced_f = {
        let mut sink = RingSink::new(64);
        let mut p = mk();
        Engine::new(g, c).run_fused_energy_traced(&mut p, seed, &mut session(), &mut sink)
    };
    assert_eq!(
        &plain_f.run, &traced_f.run,
        "tracing changed the fused energy run"
    );
    assert_eq!(&plain_f.energy, &traced_f.energy);
}

/// Release acceptance (`.github/workflows/acceptance.yml`): record a
/// full Algorithm-1 broadcast at `n = 2¹⁶` through the fused engine
/// with 8 workers, writing the `.rtrc` to disk; then re-drive the
/// identical run through a [`ReplayVerifier`] against the recording
/// read back from disk. Zero divergences allowed — the event stream is
/// emitted on the serial side of the round, so it is bit-identical for
/// every thread count by construction, and this pins that claim at
/// scale, through the real file round-trip.
#[test]
#[ignore = "release acceptance: multi-second n=2^16 fused-parallel record + replay"]
fn fused_parallel_record_replay_at_2_pow_16_has_zero_divergences() {
    let n = 1 << 16;
    let seed = 0x7ace;
    let p = 8.0 * (n as f64).ln() / n as f64;
    let g = gnp_directed(n, p, &mut derive_rng(seed, b"acc-graph", 0));
    let acfg = EeBroadcastConfig::for_gnp(n, p);
    let ecfg = EngineConfig::with_max_rounds(acfg.schedule_end() + 2).with_threads(8);

    let path = std::env::temp_dir().join(format!("trace-acceptance-{}.rtrc", std::process::id()));
    let recorded = {
        let header = RunHeader::new(seed, "v2", format!("gnp_directed/n={n}/p={p}"));
        let mut sink = RecordingSink::create(&path, &header).expect("create .rtrc");
        let mut proto = EeRandomBroadcast::new(n, 0, acfg);
        let run = Engine::new(&g, ecfg).run_fused_traced(&mut proto, seed, &mut sink);
        sink.finish(run.completed).expect("footer");
        assert!(
            proto.informed_count() == n,
            "broadcast must complete w.h.p."
        );
        run
    };

    let rec = Recording::read_from(&path).expect("read recording back");
    assert_eq!(rec.footer.as_ref().map(|f| f.rounds), Some(recorded.rounds));
    let mut verifier = ReplayVerifier::new(&rec);
    let replayed = {
        let mut proto = EeRandomBroadcast::new(n, 0, EeBroadcastConfig::for_gnp(n, p));
        Engine::new(&g, ecfg).run_fused_traced(&mut proto, seed, &mut verifier)
    };
    assert_eq!(&recorded, &replayed, "re-driven run differs");
    match verifier.finish() {
        Ok(events) => assert_eq!(events, rec.event_count(), "replay verified fewer events"),
        Err(d) => panic!("replay diverged: {d}"),
    }
    let _ = std::fs::remove_file(&path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// v1 engine: {alg1, flood, decay} × {Gnp, geometric} × {serial,
    /// parallel} — traced equals untraced, and the recording replays.
    #[test]
    fn traced_v1_runs_are_bit_identical_and_replay(
        n in 16usize..200,
        seed in 0u64..1_000_000,
        alg in 0usize..3,
        geometric in any::<bool>(),
        parallel in any::<bool>(),
    ) {
        let g = graph_for(geometric, n, seed);
        let threads = if parallel { 3 } else { 1 };
        let p = (8.0 * (n as f64).ln() / n as f64).min(0.5);
        match alg {
            0 => check_v1(
                || EeRandomBroadcast::new(n, 0, EeBroadcastConfig::for_gnp(n, p)),
                &g, seed, threads,
            ),
            1 => check_v1(
                || WindowedBroadcast::new(n, 0, FloodConfig::with_prob(0.5, 300).spec()),
                &g, seed, threads,
            ),
            _ => check_v1(
                || WindowedBroadcast::new(n, 0, DecayConfig::new(n, 8).spec()),
                &g, seed, threads,
            ),
        }
    }

    /// Fused v2 engine: same matrix as above.
    #[test]
    fn traced_fused_runs_are_bit_identical_and_replay(
        n in 16usize..200,
        seed in 0u64..1_000_000,
        alg in 0usize..3,
        geometric in any::<bool>(),
        parallel in any::<bool>(),
    ) {
        let g = graph_for(geometric, n, seed);
        let threads = if parallel { 3 } else { 1 };
        let p = (8.0 * (n as f64).ln() / n as f64).min(0.5);
        match alg {
            0 => check_fused(
                || EeRandomBroadcast::new(n, 0, EeBroadcastConfig::for_gnp(n, p)),
                &g, seed, threads,
            ),
            1 => check_fused(
                || WindowedBroadcast::new(n, 0, FloodConfig::with_prob(0.5, 300).spec()),
                &g, seed, threads,
            ),
            _ => check_fused(
                || WindowedBroadcast::new(n, 0, DecayConfig::new(n, 8).spec()),
                &g, seed, threads,
            ),
        }
    }

    /// Energy overlay (batteries + depletion events) on both contracts:
    /// the traced `EnergyRunResult` equals the untraced one field for
    /// field.
    #[test]
    fn traced_energy_runs_are_bit_identical(
        n in 16usize..160,
        seed in 0u64..1_000_000,
        geometric in any::<bool>(),
        parallel in any::<bool>(),
    ) {
        let g = graph_for(geometric, n, seed);
        let threads = if parallel { 3 } else { 1 };
        check_energy(
            || WindowedBroadcast::new(n, 0, FloodConfig::with_prob(0.4, 300).spec()),
            &g, seed, threads,
        );
    }
}
