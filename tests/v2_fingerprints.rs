//! **Bit-identity pins for the v2 fused-engine contract.**
//!
//! `tests/v2_equivalence.rs` checks the v2 engine is *statistically*
//! right; this suite checks it never *changes*. Every decide/receive
//! draw under the v2 contract is a pure function of
//! `(run_seed, node, round)`, so a fused run's `RunResult` is a frozen
//! artifact: any refactor of the decide phase — batching, wide RNG
//! kernels, fast-path comparisons — must reproduce these exact
//! trajectories or it has silently broken the contract (and with it the
//! committed `results/sweep_e18.json`).
//!
//! The pinned values were captured from the engine as of PR 5/6 (the
//! first counter-based-stream implementation, one scalar ChaCha block
//! per draw). If a pin trips, the fix is to restore bit-compatibility,
//! not to refresh the constant — refreshing is only legitimate for a
//! *deliberate*, documented contract change, which also obsoletes every
//! committed v2 sweep artifact.

use adhoc_radio::core::broadcast::decay::DecayConfig;
use adhoc_radio::core::broadcast::ee_random::{EeBroadcastConfig, EeRandomBroadcast};
use adhoc_radio::core::broadcast::flood::FloodConfig;
use adhoc_radio::core::broadcast::windowed::{ProbSource, WindowedBroadcast, WindowedSpec};
use adhoc_radio::core::seq::{KDistribution, SharedSequence};
use adhoc_radio::graph::GraphFamily;
use adhoc_radio::sim::engine::{run_protocol_fused, run_protocol_fused_energy};
use adhoc_radio::sim::{Battery, EnergySession, EngineConfig, FusedDecide, LinearRadio, RunResult};
use adhoc_radio::util::{derive_rng, split_seed};

const N: usize = 256;

/// FNV-1a over a stream of u64s — stable, dependency-free.
fn mix(h: &mut u64, x: u64) {
    for b in x.to_le_bytes() {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

/// A fingerprint that covers everything observable about a run: round
/// count, completion, and the full per-node transmission vector (which
/// pins *who* transmitted, not just how much traffic there was).
fn fingerprint(run: &RunResult) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    mix(&mut h, run.rounds);
    mix(&mut h, u64::from(run.completed));
    mix(&mut h, run.metrics.total_transmissions());
    for &t in run.metrics.per_node() {
        mix(&mut h, u64::from(t));
    }
    h
}

/// Engine config that forces the parallel decide/scatter paths on even
/// at this small n, so multi-thread fingerprints exercise the fan-out.
fn cfg(max_rounds: u64, threads: usize) -> EngineConfig {
    EngineConfig {
        par_min_edges: 0,
        par_min_awake: 0,
        ..EngineConfig::with_max_rounds(max_rounds)
    }
    .with_threads(threads)
}

fn graph(family: GraphFamily, seed: u64) -> adhoc_radio::graph::DiGraph {
    let p = match family {
        GraphFamily::GnpDirected => 8.0 * (N as f64).ln() / N as f64,
        _ => {
            adhoc_radio::graph::generate::GeoParams::with_expected_degree(N, 8.0 * (N as f64).ln())
                .r_min
        }
    };
    family.generate(N, p, &mut derive_rng(seed, b"fp-g", 0))
}

/// Run `protocol` on the fused engine at 1 and 4 threads, assert the
/// trajectories agree, and return the (shared) fingerprint.
fn pinned_run<P, F>(make: F, max_rounds: u64, run_seed: u64) -> u64
where
    P: FusedDecide,
    F: Fn() -> P,
{
    let g = graph(GraphFamily::GnpDirected, run_seed);
    let fp_at = |threads: usize| {
        let mut p = make();
        fingerprint(&run_protocol_fused(
            &g,
            &mut p,
            cfg(max_rounds, threads),
            run_seed,
        ))
    };
    let serial = fp_at(1);
    assert_eq!(serial, fp_at(4), "thread count changed the trajectory");
    serial
}

#[test]
fn flood_fixed_q_is_pinned() {
    let q = (1.0 / (8.0 * (N as f64).ln())).min(1.0);
    let flood = FloodConfig::with_prob(q, 4_000);
    let fp = pinned_run(
        || WindowedBroadcast::new(N, 0, flood.spec()),
        flood.max_rounds,
        0xF100D,
    );
    assert_eq!(fp, 0x9942_0417_CAFB_EBFB, "flood trajectory changed");
}

#[test]
fn decay_cycle_is_pinned() {
    let decay = DecayConfig::new(N, 8);
    let fp = pinned_run(
        || WindowedBroadcast::new(N, 0, decay.spec()),
        decay.max_rounds(),
        0xDECA1,
    );
    assert_eq!(fp, 0xA346_ED8D_BCE6_3D50, "decay trajectory changed");
}

#[test]
fn alg1_gnp_is_pinned() {
    let p = 8.0 * (N as f64).ln() / N as f64;
    let cfg1 = EeBroadcastConfig::for_gnp(N, p);
    let fp = pinned_run(
        || EeRandomBroadcast::new(N, 0, cfg1),
        cfg1.schedule_end() + 2,
        0xA161,
    );
    assert_eq!(fp, 0xB5EA_AE91_6960_8F80, "Algorithm 1 trajectory changed");
}

#[test]
fn shared_sequence_source_is_pinned() {
    let dist = KDistribution::paper_alpha(8, 3.0);
    let seq_seed = 0x5E9;
    let fp = pinned_run(
        || {
            WindowedBroadcast::new(
                N,
                0,
                WindowedSpec {
                    source: ProbSource::Shared(SharedSequence::new(dist.clone(), seq_seed)),
                    window: Some(400),
                    early_stop: true,
                },
            )
        },
        2_000,
        0x5EA5,
    );
    assert_eq!(
        fp, 0xA950_B10B_F872_F870,
        "shared-sequence trajectory changed"
    );
}

#[test]
fn private_distribution_source_is_pinned() {
    // `Private` draws its k from the node's own decide lane *before*
    // the transmit coin — pins the draw order within a single decide.
    let dist = KDistribution::paper_alpha(8, 3.0);
    let fp = pinned_run(
        || {
            WindowedBroadcast::new(
                N,
                0,
                WindowedSpec {
                    source: ProbSource::Private(dist.clone()),
                    window: None,
                    early_stop: true,
                },
            )
        },
        4_000,
        0x9417,
    );
    assert_eq!(
        fp, 0x2DF2_3ACF_C700_3E77,
        "private-source trajectory changed"
    );
}

#[test]
fn geometric_topology_is_pinned() {
    let q = (1.0 / (8.0 * (N as f64).ln())).min(1.0);
    let flood = FloodConfig::with_prob(q, 4_000);
    let g = graph(GraphFamily::Geometric, 0x6E0);
    let fp_at = |threads: usize| {
        let mut p = WindowedBroadcast::new(N, 0, flood.spec());
        fingerprint(&run_protocol_fused(
            &g,
            &mut p,
            cfg(flood.max_rounds, threads),
            0x6E0,
        ))
    };
    let serial = fp_at(1);
    assert_eq!(serial, fp_at(4));
    assert_eq!(
        serial, 0x4C9D_59F2_CD30_E1F0,
        "geometric trajectory changed"
    );
}

#[test]
fn battery_depletion_dead_path_is_pinned() {
    // Batteries make the engine's Dead decide-event path live: nodes
    // 1..=40 deplete mid-run and must fail-stop at exactly the same
    // rounds regardless of how the decide phase is batched.
    let q = 0.2;
    let flood = FloodConfig::with_prob(q, 60);
    let g = graph(GraphFamily::GnpDirected, 0xBA77);
    let fp_at = |threads: usize| {
        let mut caps = vec![f64::INFINITY; N];
        for c in caps.iter_mut().take(41).skip(1) {
            *c = 4.0;
        }
        let mut session = EnergySession::new(N, LinearRadio::uniform_drain(1.0), 17)
            .with_battery(Battery::per_node(caps));
        let mut p = WindowedBroadcast::new(N, 0, flood.spec());
        let res = run_protocol_fused_energy(
            &g,
            &mut p,
            cfg(flood.max_rounds, threads),
            0xBA77,
            &mut session,
        );
        let mut h = fingerprint(&res.run);
        mix(&mut h, res.energy.depleted_count() as u64);
        h
    };
    let serial = fp_at(1);
    assert_eq!(serial, fp_at(4));
    assert_eq!(
        serial, 0xA417_5F7E_B90E_5E3E,
        "battery/Dead trajectory changed"
    );
}

#[test]
fn fingerprints_depend_on_the_seed() {
    // Anti-vacuity: the fingerprint function must actually see the
    // trajectory (a constant hash would pin nothing).
    let q = 0.1;
    let flood = FloodConfig::with_prob(q, 1_000);
    let g = graph(GraphFamily::GnpDirected, 1);
    let fp = |seed: u64| {
        let mut p = WindowedBroadcast::new(N, 0, flood.spec());
        fingerprint(&run_protocol_fused(
            &g,
            &mut p,
            cfg(flood.max_rounds, 1),
            seed,
        ))
    };
    assert_ne!(fp(split_seed(1, b"a", 0)), fp(split_seed(1, b"a", 1)));
}
