//! Integration tests for the dynamic-topology and fault-injection
//! extensions: the paper's motivating scenarios (mobile nodes, fragile
//! devices) running against the real algorithms.

use adhoc_radio::core::broadcast::ee_random::EeRandomBroadcast;
use adhoc_radio::core::broadcast::epoch::{run_epoch_broadcast, EpochBroadcastConfig};
use adhoc_radio::core::gossip::{EeGossip, EeGossipConfig};
use adhoc_radio::graph::generate::mobile_geometric_sequence;
use adhoc_radio::prelude::*;
use adhoc_radio::sim::engine::run_protocol;
use adhoc_radio::sim::{run_dynamic, CrashPlan, EngineConfig, Faulty};

#[test]
fn gossip_survives_continuous_mobility() {
    let n = 256;
    let deg = 25.0;
    let r = GeoParams::with_expected_degree(n, deg).r_min;
    let p_equiv = deg / n as f64;
    let cfg = EeGossipConfig {
        gamma: 10.0,
        tracked: Some(32),
        ..EeGossipConfig::for_gnp(n, p_equiv)
    };
    for seed in 0..3u64 {
        let snapshots = (cfg.schedule_rounds() / 30 + 2) as usize;
        let graphs =
            mobile_geometric_sequence(n, r, 0.05, snapshots, &mut derive_rng(seed, b"mob", 0));
        let refs: Vec<&DiGraph> = graphs.iter().collect();
        let mut protocol = EeGossip::new(cfg);
        let mut rng = derive_rng(seed, b"engine", 0);
        let run = run_dynamic(
            &refs,
            30,
            &mut protocol,
            EngineConfig::with_max_rounds(cfg.schedule_rounds() + 1),
            &mut rng,
        );
        assert!(
            protocol.gossip_time().is_some(),
            "seed {seed}: gossip did not complete under mobility ({} rounds)",
            run.rounds
        );
    }
}

#[test]
fn mobility_rescues_a_disconnected_field() {
    // A radius so small the static snapshot is disconnected: static gossip
    // cannot complete, but strong mobility mixes the components.
    let n = 128;
    let r = 0.06; // E[deg] ≈ π r² n ≈ 1.4 — far below connectivity
    let p_equiv = 8.0 / n as f64; // transmit prob 1/8, plausible local estimate
    let cfg = EeGossipConfig {
        gamma: 200.0,
        tracked: Some(16),
        ..EeGossipConfig::for_gnp(n, p_equiv)
    };
    let budget = 4000u64;

    let run_with_sigma = |sigma: f64, seed: u64| -> usize {
        let snapshots = (budget / 20 + 2) as usize;
        let graphs =
            mobile_geometric_sequence(n, r, sigma, snapshots, &mut derive_rng(seed, b"resc", 0));
        let refs: Vec<&DiGraph> = graphs.iter().collect();
        let mut protocol = EeGossip::new(cfg);
        let mut rng = derive_rng(seed, b"engine", 0);
        let _ = run_dynamic(
            &refs,
            20,
            &mut protocol,
            EngineConfig::with_max_rounds(budget),
            &mut rng,
        );
        protocol.informed_count() // nodes holding all tracked rumors
    };

    let frozen: usize = (0..3).map(|s| run_with_sigma(0.0, s)).sum();
    let mobile: usize = (0..3).map(|s| run_with_sigma(0.08, s)).sum();
    assert!(
        mobile > frozen + 3,
        "mobility should spread rumors across components: frozen {frozen}, mobile {mobile}"
    );
}

#[test]
fn alg1_tolerates_moderate_crashes() {
    let n = 1024;
    let p = 8.0 * (n as f64).ln() / n as f64;
    for seed in 0..3u64 {
        let g = gnp_directed(n, p, &mut derive_rng(seed, b"fault-g", 0));
        let cfg = EeBroadcastConfig::for_gnp(n, p);
        let plan =
            CrashPlan::random_fraction(n, 0.25, 3, &mut derive_rng(seed, b"plan", 0)).spare(0);
        let survivors = plan.survivors();
        let mut protocol = Faulty::new(EeRandomBroadcast::new(n, 0, cfg), plan);
        let mut rng = derive_rng(seed, b"engine", 0);
        let _ = run_protocol(
            &g,
            &mut protocol,
            EngineConfig::with_max_rounds(cfg.schedule_end() + 2),
            &mut rng,
        );
        let informed = survivors
            .iter()
            .filter(|&&v| protocol.inner().informed_round(v).is_some())
            .count();
        assert!(
            informed as f64 >= 0.99 * survivors.len() as f64,
            "seed {seed}: only {informed}/{} survivors informed",
            survivors.len()
        );
    }
}

#[test]
fn crashed_nodes_never_transmit_after_their_round() {
    let n = 512;
    let p = 8.0 * (n as f64).ln() / n as f64;
    let g = gnp_directed(n, p, &mut derive_rng(9, b"fault-g", 0));
    let cfg = EeBroadcastConfig::for_gnp(n, p);
    let crash_round = 2;
    let plan =
        CrashPlan::random_fraction(n, 0.5, crash_round, &mut derive_rng(9, b"plan", 0)).spare(0);
    let crashed: Vec<NodeId> = (0..n as NodeId)
        .filter(|&v| plan.is_crashed(v, crash_round))
        .collect();
    let mut protocol = Faulty::new(EeRandomBroadcast::new(n, 0, cfg), plan);
    let mut rng = derive_rng(9, b"engine", 0);
    let run = run_protocol(
        &g,
        &mut protocol,
        EngineConfig::with_max_rounds(cfg.schedule_end() + 2),
        &mut rng,
    );
    // Crashed nodes may have transmitted in rounds < crash_round only;
    // with crash_round = 2 and Phase 1 length T ≥ 1, at most one send.
    for &v in &crashed {
        assert!(
            run.metrics.transmissions_of(v) <= 1,
            "crashed node {v} transmitted after dying"
        );
    }
}

#[test]
fn unknown_diameter_broadcast_completes_across_depths() {
    for (name, g) in [
        ("star-200", star(200)),
        ("path-150", path(150)),
        ("grid-14x14", grid2d(14, 14)),
    ] {
        let cfg = EpochBroadcastConfig::new_timed(g.n());
        let out = run_epoch_broadcast(&g, 0, &cfg, 21);
        assert!(out.all_informed, "{name}: {}/{}", out.informed, g.n());
    }
}

#[test]
fn unknown_diameter_finds_shallow_graphs_in_early_epochs() {
    // On a star (D = 2), the doubling schedule should finish during the
    // first couple of epochs — far sooner than the full schedule.
    let g = star(256);
    let cfg = EpochBroadcastConfig::new_timed(256);
    let out = run_epoch_broadcast(&g, 0, &cfg, 4);
    assert!(out.all_informed);
    let early = cfg.epoch_len(1) + cfg.epoch_len(2) + cfg.epoch_len(3);
    assert!(
        out.broadcast_time.expect("done") <= early,
        "star should finish by epoch 3: {} > {early}",
        out.broadcast_time.expect("done")
    );
}
