//! Integration tests for the §4.2 lower-bound constructions: the
//! adversarial networks really do punish the algorithms the way the
//! proofs say they must.

use adhoc_radio::graph::generate::{lower_bound_net, star_chain};
use adhoc_radio::prelude::*;
use adhoc_radio::util::ilog2_ceil;

/// Observation 4.3's mechanism: on the star-chain, a destination is
/// informed only when exactly one of its two parents transmits. With
/// q = 1 that never happens; with tiny q it takes ~1/q rounds per
/// destination's first chance; moderate q wins.
#[test]
fn obs43_collision_vs_patience() {
    let net = star_chain(64);
    // q = 1 jams forever.
    assert!(!obs43_trial(&net, 1.0, 1000, 1).all_informed);
    // q = 0.5: per destination, P(exactly one parent) = 2·q(1−q) = 1/2 —
    // fine; but intermediates also hear nothing new. Works.
    let mid = obs43_trial(&net, 0.1, 5000, 2);
    assert!(mid.all_informed);
}

/// The Observation 4.3 energy argument, measured: to succeed with
/// probability ≥ 1 − 1/n, the per-destination bound forces ≈ log n / 4
/// expected transmissions *per intermediate*, i.e. ≥ n log n / 2 total.
/// We verify the per-q expected-energy-at-success-threshold exceeds the
/// bound's shape for a sweep of q.
#[test]
fn obs43_energy_floor_shape() {
    let n_dest = 64;
    let net = star_chain(n_dest);
    let bound = obs43_bound(n_dest); // n log n / 2 = 192 for n = 64

    // For several q, find the (empirical) rounds needed until every
    // destination is informed in ≥ 9/10 trials, then compute the implied
    // total transmissions ≈ q · 2n · rounds.
    for q in [0.05, 0.1, 0.2] {
        let mut worst_round = 0u64;
        let mut fails = 0;
        for seed in 0..10 {
            let out = obs43_trial(&net, q, 200_000, seed);
            match out.broadcast_time {
                Some(t) => worst_round = worst_round.max(t),
                None => fails += 1,
            }
        }
        assert!(fails <= 1, "q={q}: too many failures");
        let implied_total = q * (2 * n_dest) as f64 * worst_round as f64;
        assert!(
            implied_total > bound / 4.0,
            "q={q}: implied energy {implied_total:.0} far below the n log n/2 floor {bound:.0}"
        );
    }
}

/// Theorem 4.4's two failure modes on the Figure-2 network: hot
/// single-scale distributions jam the big stars; cold ones cannot cross
/// the path within any c·D·λ budget with small c.
#[test]
fn thm44_failure_modes() {
    let net = lower_bound_net(6, 40); // n = 64, stars up to 64 leaves, path 28

    // Hot: q = 1/2 cannot get one-of-64 isolation in reasonable time.
    let hot = thm44_trial(&net, &TimeInvariant::Fixed(0.5), 20.0, 1);
    assert!(!hot.all_informed, "q = 1/2 should jam S₆");
    // Cold: q = 2^{-12} crawls — the budget c·D·λ with c = 2 is ~80
    // rounds; expected path progress per round is 2^{-12}.
    let cold = thm44_trial(&net, &TimeInvariant::Fixed(1.0 / 4096.0), 2.0, 2);
    assert!(!cold.all_informed, "q = 2^{{-12}} cannot finish in budget");
}

/// The measured per-node energy of *successful* time-invariant runs on
/// the Figure-2 network respects the Theorem 4.4 floor (with the
/// theorem's own constant).
#[test]
fn thm44_energy_floor_respected() {
    let k = 6;
    let diameter = 32;
    let net = lower_bound_net(k, diameter);
    let l = ilog2_ceil(net.graph.n() as u64);
    let c = 50.0;
    let floor = thm44_bound(net.n_param, diameter, c);
    let candidates = [
        TimeInvariant::Fixed(1.0 / 32.0),
        TimeInvariant::Fixed(1.0 / 64.0),
        TimeInvariant::Dist(KDistribution::paper_alpha(l, 2.0)),
        TimeInvariant::Dist(KDistribution::paper_alpha(l, 4.0)),
        TimeInvariant::Dist(KDistribution::uniform_k(l)),
    ];
    for (i, alg) in candidates.iter().enumerate() {
        let mut successes = 0;
        let mut msgs = 0.0;
        for seed in 0..6 {
            let out = thm44_trial(&net, alg, c, seed);
            if out.all_informed {
                successes += 1;
                msgs += out.mean_msgs_per_node();
            }
        }
        if successes >= 5 {
            let avg = msgs / successes as f64;
            assert!(
                avg > floor,
                "candidate {i}: measured {avg:.2} msgs/node beats the floor {floor:.2} — \
                 that would contradict Theorem 4.4"
            );
        }
    }
}

/// Corollary 4.5 (D = Θ(n)): reliable fixed-q algorithms on the deep
/// network spend Ω(log² n)-scale energy per node once they succeed.
#[test]
fn cor45_deep_network_energy() {
    let k = 5; // n = 32
    let diameter = 80; // path-dominated, D = Θ(total nodes)
    let net = lower_bound_net(k, diameter);
    // A q that reliably succeeds.
    let q = 1.0 / 16.0;
    let mut msgs = 0.0;
    let mut successes = 0;
    for seed in 0..8 {
        let out = thm44_trial(&net, &TimeInvariant::Fixed(q), 60.0, seed);
        if out.all_informed {
            successes += 1;
            msgs += out.mean_msgs_per_node();
        }
    }
    assert!(successes >= 6, "q = 1/16 should usually succeed");
    let avg = msgs / successes as f64;
    let log2n = (net.n_param as f64).log2();
    assert!(
        avg > log2n,
        "deep-network energy {avg:.1} should exceed log n = {log2n:.1} per node"
    );
}
