//! Offline stand-in for `serde_derive`.
//!
//! The workspace annotates result types with
//! `#[derive(Serialize, Deserialize)]` so that swapping in the real serde
//! later is zero-churn, but nothing in-tree serializes yet. These derives
//! therefore expand to nothing: the attribute is accepted and recorded in
//! the source, and no impls are generated. When real serialization lands
//! (JSON experiment dumps are on the roadmap), replace the `serde` +
//! `serde_derive` shims with the real crates in the two `[dependencies]`
//! lines — no source changes required.

use proc_macro::TokenStream;

/// Accept `#[derive(Serialize)]` and expand to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accept `#[derive(Deserialize)]` and expand to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
