//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *minimal* random-number API it actually uses. The shape
//! mirrors `rand 0.9` (`random`, `random_bool`, `random_range`, the
//! `RngCore`/`SeedableRng` split) so a later swap to the real crate is a
//! one-line `Cargo.toml` change, with two caveats: the convenience
//! methods live on an extension trait named [`RngExt`] (with [`Rng`] a
//! blanket alias for "any [`RngCore`]" usable as a generic bound
//! `R: Rng + ?Sized`), and seeded streams differ from the real crates'
//! (see [`SeedableRng::seed_from_u64`]), so recorded experiment numbers
//! would shift under a swap.
//!
//! Determinism contract: every method here is a pure function of the RNG
//! stream, so results are reproducible across runs, platforms and
//! `--release`/debug builds. Nothing reads OS entropy.

/// Object-safe source of raw randomness: a stream of `u32`/`u64` words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes (little-endian from `next_u64`).
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Marker alias: the generic bound used throughout the workspace
/// (`fn gnp_directed<R: Rng + ?Sized>(…)`). Blanket-implemented for every
/// [`RngCore`], so any concrete generator qualifies.
pub trait Rng: RngCore {}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type, e.g. `[u8; 32]` for ChaCha.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64.
    ///
    /// **Stream-compatibility caveat:** the real `rand_core`'s provided
    /// `seed_from_u64` uses a PCG32 expansion, not SplitMix64, so
    /// swapping the shims for the real crates changes every seeded
    /// stream (and with it any recorded experiment numbers), even
    /// though all call sites compile unchanged.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly "from all representable values" (integers)
/// or from the unit interval `[0, 1)` (floats) — the `Standard`
/// distribution, as a plain trait.
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl StandardSample for $t {
            #[inline]
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_uint!(
    u8 => next_u32,
    u16 => next_u32,
    u32 => next_u32,
    u64 => next_u64,
    usize => next_u64,
    i8 => next_u32,
    i16 => next_u32,
    i32 => next_u32,
    i64 => next_u64,
    isize => next_u64,
);

impl StandardSample for u128 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardSample for bool {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the standard
    /// `(x >> 11) * 2^-53` construction).
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from `self`.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                // Span must be computed in the unsigned type of the same
                // width: for signed ranges wider than half the domain
                // (e.g. `-100i8..100`) a signed subtraction wraps negative
                // and would sign-extend into a bogus near-2^64 bound.
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as $u).wrapping_sub(start as $u) as u64;
                if span >= <$u>::MAX as u64 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_range_int!(
    u8 => u8,
    u16 => u16,
    u32 => u32,
    u64 => u64,
    usize => usize,
    i8 => u8,
    i16 => u16,
    i32 => u32,
    i64 => u64,
    isize => usize,
);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        let u = f64::standard_sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range in random_range");
        let u = f64::standard_sample(rng);
        start + u * (end - start)
    }
}

/// Uniform draw from `[0, bound)` by widening multiply with rejection
/// (Lemire's method) — unbiased and two instructions in the common case.
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(bound);
        let lo = m as u64;
        if lo >= bound || lo >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

/// A Bernoulli(p) distribution with the threshold comparison
/// precomputed — the repeated-draw form of
/// [`RngExt::random_bool`], **bit-compatible with it by construction**
/// on every generator: both consume exactly one `next_u64` and return
/// the same boolean for the same word.
///
/// `random_bool` computes `((x >> 11) as f64 * 2⁻⁵³) < p`. Every step
/// of that float path is exact (the 53-bit mantissa fits, and the scale
/// is a power of two), so the comparison is *equivalent to an integer
/// compare*: `(x >> 11) < ⌈p·2⁵³⌉`. `Bernoulli` stores that 53-bit
/// threshold split at the word boundary and resolves the draw on the
/// **leading 32 bits alone** — one integer compare, no int→float
/// conversion — falling back to the remaining 21 bits only when the
/// leading words tie (probability 2⁻³²). This is the "degraded
/// precision fast lane" of the batched decide kernel: same bits out,
/// a fraction of the per-draw cost in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bernoulli {
    /// `⌈p·2⁵³⌉ >> 21` — compared against the draw's high 32 bits.
    /// `u64` because p = 1 gives 2³², one past the u32 domain.
    hi: u64,
    /// `⌈p·2⁵³⌉ & 0x1F_FFFF` — the tie-breaking low 21 bits.
    lo: u32,
}

impl Bernoulli {
    /// Precompute the distribution for probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]` (same domain as
    /// [`RngExt::random_bool`]).
    #[inline]
    pub fn new(p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "Bernoulli::new called with p = {p}, outside [0, 1]"
        );
        // Exact: p·2⁵³ rounds nothing (power-of-two scale), ceil is
        // exact, and the result ≤ 2⁵³ converts exactly.
        let threshold = (p * (1u64 << 53) as f64).ceil() as u64;
        Bernoulli {
            hi: threshold >> 21,
            lo: (threshold & 0x1F_FFFF) as u32,
        }
    }

    /// Draw: `true` with probability `p`. Consumes exactly one
    /// `next_u64`, like `random_bool`, and agrees with it bit-for-bit
    /// on the same stream position.
    #[inline]
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        let x = rng.next_u64();
        let w1 = x >> 32;
        if w1 != self.hi {
            w1 < self.hi
        } else {
            (((x >> 11) & 0x1F_FFFF) as u32) < self.lo
        }
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait RngExt: RngCore {
    /// Draw a value of type `T` from the standard distribution
    /// (`[0, 1)` for floats, all values for integers).
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "random_bool called with p = {p}, outside [0, 1]"
        );
        f64::standard_sample(self) < p
    }

    /// Uniform draw from a range, e.g. `rng.random_range(0..n)` or
    /// `rng.random_range(0.25..=1.0)`.
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 so the stream looks uniform enough for the
            // statistical checks below.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Counter(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = Counter(2);
        for _ in 0..10_000 {
            let x = rng.random_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = rng.random_range(0.5f64..=0.75);
            assert!((0.5..=0.75).contains(&y));
        }
    }

    #[test]
    fn bool_edge_probabilities() {
        let mut rng = Counter(3);
        for _ in 0..1_000 {
            assert!(!rng.random_bool(0.0));
            assert!(rng.random_bool(1.0));
        }
    }

    #[test]
    fn signed_ranges_wider_than_half_domain_stay_in_bounds() {
        // Regression: the span of `-100i8..100` overflows i8; it must be
        // computed in u8 before widening, or values escape the range.
        let mut rng = Counter(6);
        for _ in 0..5_000 {
            let x = rng.random_range(-100i8..100);
            assert!((-100..100).contains(&x), "{x} outside -100..100");
            let y = rng.random_range(-100i8..=100);
            assert!((-100..=100).contains(&y), "{y} outside -100..=100");
            let full = rng.random_range(i8::MIN..=i8::MAX);
            let _ = full; // full-domain inclusive must not panic/loop
        }
        let mut hit_neg = false;
        let mut hit_pos = false;
        for _ in 0..1_000 {
            let x = rng.random_range(-100i8..100);
            hit_neg |= x < 0;
            hit_pos |= x >= 0;
        }
        assert!(hit_neg && hit_pos, "signed range never crossed zero");
    }

    #[test]
    fn range_hits_every_value() {
        let mut rng = Counter(4);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn works_through_mut_ref_and_dyn() {
        fn take_generic<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
        let mut rng = Counter(5);
        take_generic(&mut rng);
        let dynrng: &mut dyn RngCore = &mut rng;
        dynrng.next_u64();
    }

    #[test]
    fn bernoulli_is_bit_compatible_with_random_bool() {
        // The load-bearing property: for *any* p and any stream
        // position, `Bernoulli::new(p).sample(rng)` returns exactly what
        // `rng.random_bool(p)` would have, consuming the same one word.
        let mut ps = vec![
            0.0,
            1.0,
            0.5,
            0.05,
            1.0 / (1u64 << 53) as f64, // smallest non-trivial threshold
            f64::MIN_POSITIVE,         // threshold still ceils to 1
            1.0 - f64::EPSILON,
            0.2,
            0.3333333333333333,
        ];
        // Adversarial ps: thresholds landing exactly on the 21-bit
        // split, so the tie path and its boundaries all get exercised.
        for hi in [0u64, 1, 77, (1 << 32) - 1] {
            for lo in [0u64, 1, 0x1F_FFFF] {
                let t = (hi << 21) | lo;
                ps.push(t as f64 / (1u64 << 53) as f64);
            }
        }
        let mut seedgen = Counter(7);
        for p in ps {
            let d = Bernoulli::new(p);
            let seed = seedgen.next_u64();
            let mut a = Counter(seed);
            let mut b = Counter(seed);
            for i in 0..4_000 {
                assert_eq!(a.random_bool(p), d.sample(&mut b), "p = {p:e}, draw {i}");
            }
            assert_eq!(a.0, b.0, "p = {p:e}: streams desynchronised");
        }
    }

    #[test]
    fn bernoulli_degenerate_probabilities() {
        let mut rng = Counter(3);
        let always = Bernoulli::new(1.0);
        let never = Bernoulli::new(0.0);
        for _ in 0..1_000 {
            assert!(always.sample(&mut rng));
            assert!(!never.sample(&mut rng));
        }
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bernoulli_rejects_out_of_range() {
        let _ = Bernoulli::new(1.5);
    }

    #[test]
    fn bernoulli_hits_the_expected_rate() {
        let mut rng = Counter(11);
        let d = Bernoulli::new(0.3);
        let n = 100_000;
        let hits = (0..n).filter(|_| d.sample(&mut rng)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate} far from 0.3");
    }
}
