//! Offline stand-in for the `rand_chacha` crate: [`ChaCha8Rng`], a real
//! ChaCha stream cipher (8 rounds, D. J. Bernstein's original 64-bit
//! counter / 64-bit nonce layout) used as a counter-mode PRNG.
//!
//! Why ChaCha here at all, instead of something cheaper? The workspace
//! records concrete experiment numbers, so the generator must be *stable
//! by definition* — a documented keystream no library update can change —
//! and must support cheap independent streams from derived seeds. ChaCha's
//! keyed counter mode gives both. The word stream for a given seed is the
//! ChaCha8 keystream with that key, zero nonce, block counter starting at
//! zero, words taken little-endian in order — verified against an
//! independently computed test vector below.
//!
//! Not a contribution to cryptography: this is a PRNG for simulations.

use rand::{RngCore, SeedableRng};

/// Re-export point mirroring `rand_chacha::rand_core`, so existing
/// `use rand_chacha::rand_core::SeedableRng` imports keep working.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

/// "expand 32-byte k" — the ChaCha constant words.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

const CHACHA8_DOUBLE_ROUNDS: usize = 4;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha8 output block for `key` at block counter `counter` (zero
/// nonce, the layout documented in the crate docs). The single source of
/// truth for the block function — the sequential [`ChaCha8Rng`] and the
/// wide kernel both produce exactly these words.
pub fn chacha8_block(key: &[u32; 8], counter: u64) -> [u32; 16] {
    let mut state: [u32; 16] = [
        SIGMA[0],
        SIGMA[1],
        SIGMA[2],
        SIGMA[3],
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        0,
        0,
    ];
    let input = state;
    for _ in 0..CHACHA8_DOUBLE_ROUNDS {
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (word, inp) in state.iter_mut().zip(input) {
        *word = word.wrapping_add(inp);
    }
    state
}

/// The SplitMix64 expansion of a `u64` seed into ChaCha key words —
/// exactly the words [`SeedableRng::seed_from_u64`] produces (each key
/// word is the low half of one SplitMix64 output), exposed so callers
/// that cache per-entity keys can derive them without routing through
/// a byte-array seed.
pub fn key_words_from_u64(mut state: u64) -> [u32; 8] {
    let mut key = [0u32; 8];
    for word in key.iter_mut() {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        *word = z as u32;
    }
    key
}

// --- wide (multi-lane) block kernel -------------------------------------
//
// Counter-mode streams batch perfectly: W independent (key, counter)
// pairs run the identical data-independent schedule, so transposing the
// state into structure-of-arrays form — `state[i][lane]` — turns every
// quarter-round op into W-wide element-wise adds/xors/rotates that the
// compiler auto-vectorizes (AVX2 on x86-64 via the runtime-dispatched
// 8-lane path below, 128-bit SSE2/NEON for the 4-lane path). Lane `l` of
// a wide call produces bit-exactly `chacha8_block(keys[l], counters[l])`
// at every width — pinned by `tests/wide_chacha.rs` — so callers may
// batch draws in any grouping without changing a single output word.

/// Widest batch the wide kernel handles in one SoA pass (the AVX-512
/// path; scratch arrays in callers can be sized to this).
pub const MAX_WIDE_LANES: usize = 16;

/// Every lane width the wide kernel can be forced to run at (see
/// [`chacha8_blocks_at_width`]); `wide_lanes()` picks one of these.
pub const WIDE_LANE_WIDTHS: [usize; 5] = [1, 2, 4, 8, 16];

// Index-form loops throughout the kernel: each `for l in 0..W` over a
// fixed row is one W-wide vector op, and keeping every loop in the same
// shape is what the auto-vectorizer reliably turns into packed
// adds/xors/rolls (iterator chains over `[[u32; W]; 16]` rows obscure
// the unit-stride access pattern from the cost model).
#[allow(clippy::needless_range_loop)]
#[inline(always)]
fn soa_quarter_round<const W: usize>(
    state: &mut [[u32; W]; 16],
    a: usize,
    b: usize,
    c: usize,
    d: usize,
) {
    for l in 0..W {
        state[a][l] = state[a][l].wrapping_add(state[b][l]);
    }
    for l in 0..W {
        state[d][l] = (state[d][l] ^ state[a][l]).rotate_left(16);
    }
    for l in 0..W {
        state[c][l] = state[c][l].wrapping_add(state[d][l]);
    }
    for l in 0..W {
        state[b][l] = (state[b][l] ^ state[c][l]).rotate_left(12);
    }
    for l in 0..W {
        state[a][l] = state[a][l].wrapping_add(state[b][l]);
    }
    for l in 0..W {
        state[d][l] = (state[d][l] ^ state[a][l]).rotate_left(8);
    }
    for l in 0..W {
        state[c][l] = state[c][l].wrapping_add(state[d][l]);
    }
    for l in 0..W {
        state[b][l] = (state[b][l] ^ state[c][l]).rotate_left(7);
    }
}

/// `W` blocks in one SoA pass; all slices must have length `W`.
#[allow(clippy::needless_range_loop)] // see `soa_quarter_round`
#[inline(always)]
fn blocks_soa<const W: usize>(keys: &[[u32; 8]], counters: &[u64], out: &mut [[u32; 16]]) {
    assert!(keys.len() == W && counters.len() == W && out.len() == W);
    let mut state = [[0u32; W]; 16];
    for (i, s) in SIGMA.iter().enumerate() {
        state[i] = [*s; W];
    }
    for i in 0..8 {
        for l in 0..W {
            state[4 + i][l] = keys[l][i];
        }
    }
    for l in 0..W {
        state[12][l] = counters[l] as u32;
        state[13][l] = (counters[l] >> 32) as u32;
    }
    // The feed-forward add only needs the *initial* key and counter rows;
    // rows 0–3 are compile-time constants and rows 14–15 are zero. Saving
    // just rows 4–13 (instead of `let input = state`) keeps the round
    // loop's live set at 16 vectors + temps, which is what lets the
    // 16-lane path stay inside the 32-register ZMM file without spills.
    let mut input_mid = [[0u32; W]; 10];
    input_mid.copy_from_slice(&state[4..14]);
    for _ in 0..CHACHA8_DOUBLE_ROUNDS {
        soa_quarter_round(&mut state, 0, 4, 8, 12);
        soa_quarter_round(&mut state, 1, 5, 9, 13);
        soa_quarter_round(&mut state, 2, 6, 10, 14);
        soa_quarter_round(&mut state, 3, 7, 11, 15);
        soa_quarter_round(&mut state, 0, 5, 10, 15);
        soa_quarter_round(&mut state, 1, 6, 11, 12);
        soa_quarter_round(&mut state, 2, 7, 8, 13);
        soa_quarter_round(&mut state, 3, 4, 9, 14);
    }
    // Feed-forward row-wise (W-wide vector adds), then transpose out; a
    // fused `out[l][i] = state[i][l] + input[i][l]` reads column-wise and
    // defeats vectorization of the adds.
    for i in 0..4 {
        for l in 0..W {
            state[i][l] = state[i][l].wrapping_add(SIGMA[i]);
        }
    }
    for i in 0..10 {
        for l in 0..W {
            state[4 + i][l] = state[4 + i][l].wrapping_add(input_mid[i][l]);
        }
    }
    // Rows 14–15 (nonce) were zero in the input: nothing to add.
    for l in 0..W {
        for i in 0..16 {
            out[l][i] = state[i][l];
        }
    }
}

/// The 8-lane pass compiled with AVX2 codegen (256-bit = exactly eight
/// u32 lanes per register; the 16-row state fits the 16-register YMM
/// file). Safety: caller must have verified `avx2` is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn blocks_soa_8_avx2(keys: &[[u32; 8]], counters: &[u64], out: &mut [[u32; 16]]) {
    blocks_soa::<8>(keys, counters, out);
}

/// The 8-lane pass compiled with AVX-512VL codegen: still 256-bit
/// vectors (8 × u32), but the quarter-round rotates become single
/// `vprold` instructions instead of shift/shift/or triples — ChaCha is
/// one-third rotates, so this is the cheapest big win on hosts that
/// have it. Safety: caller must have verified `avx512f` + `avx512vl`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl")]
fn blocks_soa_8_avx512(keys: &[[u32; 8]], counters: &[u64], out: &mut [[u32; 16]]) {
    blocks_soa::<8>(keys, counters, out);
}

/// The 16-lane pass compiled with AVX-512F codegen: one full ZMM
/// register per state row (16 × u32), single-instruction `vprold`
/// rotates, and the 16-row working state plus the input copy fit the
/// 32-register ZMM file without spilling. Safety: caller must have
/// verified `avx512f`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
fn blocks_soa_16_avx512(keys: &[[u32; 8]], counters: &[u64], out: &mut [[u32; 16]]) {
    blocks_soa::<16>(keys, counters, out);
}

#[cfg(target_arch = "x86_64")]
fn has_avx512_rotates() -> bool {
    std::arch::is_x86_feature_detected!("avx512f")
        && std::arch::is_x86_feature_detected!("avx512vl")
}

#[cfg(target_arch = "x86_64")]
fn detect_wide_lanes() -> usize {
    if std::arch::is_x86_feature_detected!("avx512f") {
        16
    } else if std::arch::is_x86_feature_detected!("avx2") {
        8
    } else {
        4
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_wide_lanes() -> usize {
    // 128-bit SIMD (NEON / portable) — four u32 lanes.
    4
}

/// The lane width the runtime dispatch selects on this host (8 with
/// AVX2, 4 otherwise). Outputs are identical at every width; this only
/// governs how many blocks one SoA pass computes.
pub fn wide_lanes() -> usize {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static LANES: AtomicUsize = AtomicUsize::new(0);
    match LANES.load(Ordering::Relaxed) {
        0 => {
            let w = detect_wide_lanes();
            LANES.store(w, Ordering::Relaxed);
            w
        }
        w => w,
    }
}

/// One exact-width batch (`keys.len()` ∈ [`WIDE_LANE_WIDTHS`]), routed
/// through the feature-specific codegen where one exists.
fn blocks_exact(keys: &[[u32; 8]], counters: &[u64], out: &mut [[u32; 16]]) {
    match keys.len() {
        16 => {
            #[cfg(target_arch = "x86_64")]
            if std::arch::is_x86_feature_detected!("avx512f") {
                // Safety: feature presence just checked.
                return unsafe { blocks_soa_16_avx512(keys, counters, out) };
            }
            blocks_soa::<16>(keys, counters, out)
        }
        8 => {
            #[cfg(target_arch = "x86_64")]
            {
                // Safety: feature presence checked right before each call.
                if has_avx512_rotates() {
                    return unsafe { blocks_soa_8_avx512(keys, counters, out) };
                }
                if std::arch::is_x86_feature_detected!("avx2") {
                    return unsafe { blocks_soa_8_avx2(keys, counters, out) };
                }
            }
            blocks_soa::<8>(keys, counters, out)
        }
        4 => blocks_soa::<4>(keys, counters, out),
        2 => blocks_soa::<2>(keys, counters, out),
        1 => out[0] = chacha8_block(&keys[0], counters[0]),
        w => unreachable!("unsupported lane width {w}"),
    }
}

/// Generate `out.len()` ChaCha8 blocks — `out[l] = chacha8_block(keys[l],
/// counters[l])` — in runtime-dispatched wide batches. Any length is
/// accepted: full [`wide_lanes`]-wide groups run the SIMD path, the tail
/// cascades down the supported widths.
pub fn chacha8_blocks(keys: &[[u32; 8]], counters: &[u64], out: &mut [[u32; 16]]) {
    chacha8_blocks_at_width(wide_lanes(), keys, counters, out)
}

/// [`chacha8_blocks`] with the lane width forced (test hook for pinning
/// every width against the scalar stream; `width` must be one of
/// [`WIDE_LANE_WIDTHS`]).
pub fn chacha8_blocks_at_width(
    width: usize,
    keys: &[[u32; 8]],
    counters: &[u64],
    out: &mut [[u32; 16]],
) {
    assert!(
        WIDE_LANE_WIDTHS.contains(&width),
        "unsupported lane width {width}"
    );
    assert!(
        keys.len() == counters.len() && keys.len() == out.len(),
        "lane slice lengths differ"
    );
    let mut done = 0;
    while keys.len() - done >= width {
        blocks_exact(
            &keys[done..done + width],
            &counters[done..done + width],
            &mut out[done..done + width],
        );
        done += width;
    }
    // Tail: cascade down through the narrower widths.
    let mut w = width / 2;
    while w > 0 {
        if keys.len() - done >= w {
            blocks_exact(
                &keys[done..done + w],
                &counters[done..done + w],
                &mut out[done..done + w],
            );
            done += w;
        }
        w /= 2;
    }
    debug_assert_eq!(done, keys.len());
}

/// Refill every *pending* stream in `rngs` — one whose buffer is
/// exhausted, e.g. freshly positioned by
/// [`set_block_pos`](ChaCha8Rng::set_block_pos) — through the wide
/// kernel, leaving streams with unread buffered words untouched. After
/// the call each refilled stream is bit-exactly where a sequential draw
/// would have put it: buffer loaded, counter advanced past the block.
///
/// This is the batched form of the lazy refill the sequential API does
/// one stream at a time; position W streams, `refill_wide` them, and the
/// per-stream draws cost no block computation at all.
pub fn refill_wide(rngs: &mut [ChaCha8Rng]) {
    let width = wide_lanes();
    let mut pending = [0usize; MAX_WIDE_LANES];
    let mut keys = [[0u32; 8]; MAX_WIDE_LANES];
    let mut counters = [0u64; MAX_WIDE_LANES];
    let mut blocks = [[0u32; 16]; MAX_WIDE_LANES];
    let mut k = 0;
    let flush = |rngs: &mut [ChaCha8Rng],
                 pending: &[usize],
                 keys: &mut [[u32; 8]],
                 counters: &mut [u64],
                 blocks: &mut [[u32; 16]]| {
        let k = pending.len();
        for (l, &i) in pending.iter().enumerate() {
            keys[l] = rngs[i].key;
            counters[l] = rngs[i].counter;
        }
        chacha8_blocks(&keys[..k], &counters[..k], &mut blocks[..k]);
        for (l, &i) in pending.iter().enumerate() {
            rngs[i].buf = blocks[l];
            rngs[i].index = 0;
            rngs[i].counter = rngs[i].counter.wrapping_add(1);
        }
    };
    for i in 0..rngs.len() {
        if rngs[i].index == 16 {
            pending[k] = i;
            k += 1;
            if k == width {
                flush(rngs, &pending[..k], &mut keys, &mut counters, &mut blocks);
                k = 0;
            }
        }
    }
    if k > 0 {
        flush(rngs, &pending[..k], &mut keys, &mut counters, &mut blocks);
    }
}

/// The ChaCha8 random number generator.
///
/// Construct via [`SeedableRng::from_seed`] (32-byte key) or
/// [`SeedableRng::seed_from_u64`] (SplitMix64-expanded, matching the
/// `rand` shim's documented expansion). Equal seeds give bit-identical
/// streams forever; `Clone` snapshots the exact stream position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Key + counter state; constants are re-applied per block.
    key: [u32; 8],
    /// 64-bit block counter (words 12–13 of the state).
    counter: u64,
    /// Current 16-word output block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 ⇒ refill.
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        self.buf = chacha8_block(&self.key, self.counter);
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    /// The stream's key words (the 32-byte key, little-endian words) —
    /// the cacheable identity of the stream: a stream rebuilt via
    /// [`from_key_words`](Self::from_key_words) +
    /// [`set_block_pos`](Self::set_block_pos) is indistinguishable from
    /// this one repositioned there.
    pub fn key_words(&self) -> [u32; 8] {
        self.key
    }

    /// A stream from pre-expanded key words, positioned at block 0 with
    /// nothing generated yet — the cached-key counterpart of
    /// [`SeedableRng::from_seed`] (same cost: a key copy, block
    /// generation stays lazy).
    pub fn from_key_words(key: [u32; 8]) -> Self {
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            index: 16,
        }
    }

    /// A stream whose current buffer is `block`'s already-computed words
    /// (`buf == chacha8_block(&key, block)`, e.g. one lane of a
    /// [`chacha8_blocks`] batch), with nothing read yet. Bit-exactly the
    /// state [`from_key_words`](Self::from_key_words) +
    /// [`set_block_pos`](Self::set_block_pos)`(block)` reaches after its
    /// first lazy refill — the next draw reads word 0 of `block`, and
    /// draws past word 15 continue into block `block + 1` — but without
    /// recomputing the block. The batched callers' way of turning wide
    /// kernel output into positioned streams with zero scalar ChaCha
    /// work.
    #[inline]
    pub fn from_generated_block(key: [u32; 8], block: u64, buf: [u32; 16]) -> Self {
        ChaCha8Rng {
            key,
            counter: block.wrapping_add(1),
            buf,
            index: 0,
        }
    }

    /// Number of 32-bit words drawn so far (diagnostics / tests).
    pub fn words_consumed(&self) -> u64 {
        // counter blocks fully generated, minus the unread tail of `buf`.
        self.counter * 16 - (16 - self.index) as u64
    }

    /// Jump the keystream to the start of 64-byte `block` — ChaCha's
    /// native counter-mode seek. The next draw reads word 0 of that
    /// block; nothing is computed until then (block generation is lazy),
    /// so constructing a stream and seeking it is just state setup.
    ///
    /// This is what makes **counter-based sub-streams** possible: with a
    /// per-entity key, `(entity, index) → set_block_pos(index)` gives a
    /// random-access family of 16-word draws that any thread can evaluate
    /// independently — the v2 per-node decide streams of `radio-sim`.
    #[inline]
    pub fn set_block_pos(&mut self, block: u64) {
        self.counter = block;
        self.index = 16; // force a (lazy) refill at the next draw
    }

    /// The block index the next draw will read from (the inverse of
    /// [`set_block_pos`](Self::set_block_pos) at block granularity).
    pub fn block_pos(&self) -> u64 {
        if self.index == 16 {
            self.counter
        } else {
            self.counter - 1
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Block generation is lazy (the first draw refills), so seeding
        // costs only the key copy — important for the per-node decide
        // streams, which construct + position a stream per decision and
        // often draw a single word from it.
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.index == 16 {
            self.refill();
        }
        let word = self.buf[self.index];
        self.index += 1;
        word
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    /// ChaCha8 keystream, block 0, all-zero key and nonce. Computed with
    /// an independent straight-line implementation of the ChaCha8 block
    /// function (no shared code with `refill`).
    #[test]
    fn matches_independent_block_computation() {
        fn reference_block_zero() -> [u32; 16] {
            let mut s: [u32; 16] = [
                0x6170_7865,
                0x3320_646E,
                0x7962_2D32,
                0x6B20_6574,
                0,
                0,
                0,
                0,
                0,
                0,
                0,
                0,
                0,
                0,
                0,
                0,
            ];
            let init = s;
            fn qr(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
                s[a] = s[a].wrapping_add(s[b]);
                s[d] = (s[d] ^ s[a]).rotate_left(16);
                s[c] = s[c].wrapping_add(s[d]);
                s[b] = (s[b] ^ s[c]).rotate_left(12);
                s[a] = s[a].wrapping_add(s[b]);
                s[d] = (s[d] ^ s[a]).rotate_left(8);
                s[c] = s[c].wrapping_add(s[d]);
                s[b] = (s[b] ^ s[c]).rotate_left(7);
            }
            for _ in 0..4 {
                qr(&mut s, 0, 4, 8, 12);
                qr(&mut s, 1, 5, 9, 13);
                qr(&mut s, 2, 6, 10, 14);
                qr(&mut s, 3, 7, 11, 15);
                qr(&mut s, 0, 5, 10, 15);
                qr(&mut s, 1, 6, 11, 12);
                qr(&mut s, 2, 7, 8, 13);
                qr(&mut s, 3, 4, 9, 14);
            }
            for (w, i) in s.iter_mut().zip(init) {
                *w = w.wrapping_add(i);
            }
            s
        }

        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        let expect = reference_block_zero();
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(rng.next_u32(), e, "word {i}");
        }
    }

    #[test]
    fn streams_are_reproducible_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let mut diff = 0;
        for _ in 0..256 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
            if x != c.next_u64() {
                diff += 1;
            }
        }
        assert!(
            diff > 250,
            "seeds 42/43 produced suspiciously equal streams"
        );
    }

    #[test]
    fn clone_snapshots_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..21 {
            rng.next_u32();
        }
        let mut snap = rng.clone();
        for _ in 0..100 {
            assert_eq!(rng.next_u64(), snap.next_u64());
        }
    }

    #[test]
    fn blocks_advance() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
        assert_eq!(rng.words_consumed(), 32);
    }

    #[test]
    fn set_block_pos_matches_sequential_stream() {
        // Random access must agree with sequential generation: seeking
        // to block k and drawing 16 words reproduces words 16k..16k+16
        // of the plain stream, for any visit order.
        let mut seq = ChaCha8Rng::seed_from_u64(77);
        let stream: Vec<u32> = (0..16 * 8).map(|_| seq.next_u32()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        for &block in &[3u64, 0, 7, 1, 3] {
            rng.set_block_pos(block);
            assert_eq!(rng.block_pos(), block);
            for w in 0..16 {
                assert_eq!(
                    rng.next_u32(),
                    stream[block as usize * 16 + w],
                    "block {block} word {w}"
                );
            }
        }
        // And a fresh stream is at block 0.
        assert_eq!(ChaCha8Rng::seed_from_u64(77).block_pos(), 0);
    }

    #[test]
    fn key_words_from_u64_matches_seed_from_u64() {
        for seed in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF_CAFE_F00D] {
            let mut a = ChaCha8Rng::seed_from_u64(seed);
            let mut b = ChaCha8Rng::from_key_words(key_words_from_u64(seed));
            assert_eq!(a.key_words(), b.key_words(), "seed {seed:#x}");
            for _ in 0..40 {
                assert_eq!(a.next_u32(), b.next_u32(), "seed {seed:#x}");
            }
        }
    }

    #[test]
    fn chacha8_block_matches_stream() {
        let key = key_words_from_u64(99);
        for block in [0u64, 1, 5, 1 << 40, u64::MAX] {
            let mut rng = ChaCha8Rng::from_key_words(key);
            rng.set_block_pos(block);
            let words = chacha8_block(&key, block);
            for (w, &e) in words.iter().enumerate() {
                assert_eq!(rng.next_u32(), e, "block {block} word {w}");
            }
        }
    }

    #[test]
    fn wide_blocks_match_scalar_at_every_width() {
        // 37 lanes: exercises full groups + the cascading tail at every
        // supported width (two full 16-wide groups plus a 5-lane tail),
        // with a counter at the wrap boundary mixed in.
        let keys: Vec<[u32; 8]> = (0..37).map(key_words_from_u64).collect();
        let counters: Vec<u64> = (0..37u64)
            .map(|i| i.wrapping_mul(0x1234_5678_9ABC))
            .collect();
        let mut counters = counters;
        counters[7] = u64::MAX;
        let expect: Vec<[u32; 16]> = keys
            .iter()
            .zip(&counters)
            .map(|(k, &c)| chacha8_block(k, c))
            .collect();
        for width in WIDE_LANE_WIDTHS {
            let mut out = vec![[0u32; 16]; keys.len()];
            chacha8_blocks_at_width(width, &keys, &counters, &mut out);
            assert_eq!(out, expect, "width {width}");
        }
        let mut out = vec![[0u32; 16]; keys.len()];
        chacha8_blocks(&keys, &counters, &mut out);
        assert_eq!(out, expect, "dispatched width {}", wide_lanes());
    }

    #[test]
    fn refill_wide_matches_sequential_refills() {
        // A mixed slice: pending streams (freshly positioned), streams
        // mid-buffer, and a stream exactly at a block boundary by
        // consumption. Only the pending ones may change.
        let make = |seed: u64, pos: u64, drawn: usize| {
            let mut r = ChaCha8Rng::seed_from_u64(seed);
            r.set_block_pos(pos);
            for _ in 0..drawn {
                r.next_u32();
            }
            r
        };
        let mut wide: Vec<ChaCha8Rng> = vec![
            make(1, 3, 0),        // pending
            make(2, 0, 5),        // mid-buffer: untouched
            make(3, 9, 16),       // consumed to the boundary: pending again
            make(4, 0, 0),        // pending at block 0
            make(5, 7, 1),        // barely started: untouched
            make(6, u64::MAX, 0), // counter wrap edge
        ];
        let mut seq = wide.clone();
        let before_untouched = [wide[1].clone(), wide[4].clone()];
        refill_wide(&mut wide);
        assert_eq!(wide[1], before_untouched[0]);
        assert_eq!(wide[4], before_untouched[1]);
        for (w, s) in wide.iter_mut().zip(seq.iter_mut()) {
            for i in 0..48 {
                assert_eq!(w.next_u32(), s.next_u32(), "word {i}");
            }
        }
    }

    #[test]
    fn wide_lanes_is_supported_and_stable() {
        let w = wide_lanes();
        assert!(WIDE_LANE_WIDTHS.contains(&w));
        assert_eq!(w, wide_lanes());
    }

    #[test]
    fn unit_interval_mean_is_sane() {
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }
}
