//! Offline stand-in for the `rand_chacha` crate: [`ChaCha8Rng`], a real
//! ChaCha stream cipher (8 rounds, D. J. Bernstein's original 64-bit
//! counter / 64-bit nonce layout) used as a counter-mode PRNG.
//!
//! Why ChaCha here at all, instead of something cheaper? The workspace
//! records concrete experiment numbers, so the generator must be *stable
//! by definition* — a documented keystream no library update can change —
//! and must support cheap independent streams from derived seeds. ChaCha's
//! keyed counter mode gives both. The word stream for a given seed is the
//! ChaCha8 keystream with that key, zero nonce, block counter starting at
//! zero, words taken little-endian in order — verified against an
//! independently computed test vector below.
//!
//! Not a contribution to cryptography: this is a PRNG for simulations.

use rand::{RngCore, SeedableRng};

/// Re-export point mirroring `rand_chacha::rand_core`, so existing
/// `use rand_chacha::rand_core::SeedableRng` imports keep working.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

/// "expand 32-byte k" — the ChaCha constant words.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

const CHACHA8_DOUBLE_ROUNDS: usize = 4;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The ChaCha8 random number generator.
///
/// Construct via [`SeedableRng::from_seed`] (32-byte key) or
/// [`SeedableRng::seed_from_u64`] (SplitMix64-expanded, matching the
/// `rand` shim's documented expansion). Equal seeds give bit-identical
/// streams forever; `Clone` snapshots the exact stream position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Key + counter state; constants are re-applied per block.
    key: [u32; 8],
    /// 64-bit block counter (words 12–13 of the state).
    counter: u64,
    /// Current 16-word output block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 ⇒ refill.
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            SIGMA[0],
            SIGMA[1],
            SIGMA[2],
            SIGMA[3],
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = state;
        for _ in 0..CHACHA8_DOUBLE_ROUNDS {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, inp) in state.iter_mut().zip(input) {
            *word = word.wrapping_add(inp);
        }
        self.buf = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    /// Number of 32-bit words drawn so far (diagnostics / tests).
    pub fn words_consumed(&self) -> u64 {
        // counter blocks fully generated, minus the unread tail of `buf`.
        self.counter * 16 - (16 - self.index) as u64
    }

    /// Jump the keystream to the start of 64-byte `block` — ChaCha's
    /// native counter-mode seek. The next draw reads word 0 of that
    /// block; nothing is computed until then (block generation is lazy),
    /// so constructing a stream and seeking it is just state setup.
    ///
    /// This is what makes **counter-based sub-streams** possible: with a
    /// per-entity key, `(entity, index) → set_block_pos(index)` gives a
    /// random-access family of 16-word draws that any thread can evaluate
    /// independently — the v2 per-node decide streams of `radio-sim`.
    #[inline]
    pub fn set_block_pos(&mut self, block: u64) {
        self.counter = block;
        self.index = 16; // force a (lazy) refill at the next draw
    }

    /// The block index the next draw will read from (the inverse of
    /// [`set_block_pos`](Self::set_block_pos) at block granularity).
    pub fn block_pos(&self) -> u64 {
        if self.index == 16 {
            self.counter
        } else {
            self.counter - 1
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Block generation is lazy (the first draw refills), so seeding
        // costs only the key copy — important for the per-node decide
        // streams, which construct + position a stream per decision and
        // often draw a single word from it.
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.index == 16 {
            self.refill();
        }
        let word = self.buf[self.index];
        self.index += 1;
        word
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    /// ChaCha8 keystream, block 0, all-zero key and nonce. Computed with
    /// an independent straight-line implementation of the ChaCha8 block
    /// function (no shared code with `refill`).
    #[test]
    fn matches_independent_block_computation() {
        fn reference_block_zero() -> [u32; 16] {
            let mut s: [u32; 16] = [
                0x6170_7865,
                0x3320_646E,
                0x7962_2D32,
                0x6B20_6574,
                0,
                0,
                0,
                0,
                0,
                0,
                0,
                0,
                0,
                0,
                0,
                0,
            ];
            let init = s;
            fn qr(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
                s[a] = s[a].wrapping_add(s[b]);
                s[d] = (s[d] ^ s[a]).rotate_left(16);
                s[c] = s[c].wrapping_add(s[d]);
                s[b] = (s[b] ^ s[c]).rotate_left(12);
                s[a] = s[a].wrapping_add(s[b]);
                s[d] = (s[d] ^ s[a]).rotate_left(8);
                s[c] = s[c].wrapping_add(s[d]);
                s[b] = (s[b] ^ s[c]).rotate_left(7);
            }
            for _ in 0..4 {
                qr(&mut s, 0, 4, 8, 12);
                qr(&mut s, 1, 5, 9, 13);
                qr(&mut s, 2, 6, 10, 14);
                qr(&mut s, 3, 7, 11, 15);
                qr(&mut s, 0, 5, 10, 15);
                qr(&mut s, 1, 6, 11, 12);
                qr(&mut s, 2, 7, 8, 13);
                qr(&mut s, 3, 4, 9, 14);
            }
            for (w, i) in s.iter_mut().zip(init) {
                *w = w.wrapping_add(i);
            }
            s
        }

        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        let expect = reference_block_zero();
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(rng.next_u32(), e, "word {i}");
        }
    }

    #[test]
    fn streams_are_reproducible_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let mut diff = 0;
        for _ in 0..256 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
            if x != c.next_u64() {
                diff += 1;
            }
        }
        assert!(
            diff > 250,
            "seeds 42/43 produced suspiciously equal streams"
        );
    }

    #[test]
    fn clone_snapshots_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..21 {
            rng.next_u32();
        }
        let mut snap = rng.clone();
        for _ in 0..100 {
            assert_eq!(rng.next_u64(), snap.next_u64());
        }
    }

    #[test]
    fn blocks_advance() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
        assert_eq!(rng.words_consumed(), 32);
    }

    #[test]
    fn set_block_pos_matches_sequential_stream() {
        // Random access must agree with sequential generation: seeking
        // to block k and drawing 16 words reproduces words 16k..16k+16
        // of the plain stream, for any visit order.
        let mut seq = ChaCha8Rng::seed_from_u64(77);
        let stream: Vec<u32> = (0..16 * 8).map(|_| seq.next_u32()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        for &block in &[3u64, 0, 7, 1, 3] {
            rng.set_block_pos(block);
            assert_eq!(rng.block_pos(), block);
            for w in 0..16 {
                assert_eq!(
                    rng.next_u32(),
                    stream[block as usize * 16 + w],
                    "block {block} word {w}"
                );
            }
        }
        // And a fresh stream is at block 0.
        assert_eq!(ChaCha8Rng::seed_from_u64(77).block_pos(), 0);
    }

    #[test]
    fn unit_interval_mean_is_sane() {
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }
}
