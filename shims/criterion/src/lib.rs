//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Exposes the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `sample_size`, `throughput`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, `BenchmarkId`, `Throughput`, and
//! the `criterion_group!` / `criterion_main!` macros — so `cargo bench`
//! compiles and runs against this shim unchanged.
//!
//! Measurement is deliberately simple: per benchmark, a timed warm-up
//! phase followed by `sample_size` timed batches, reporting min/mean of
//! the per-iteration wall time (and throughput when declared). No outlier
//! rejection, no HTML reports — swap in the real crate for those; every
//! call site stays identical.
//!
//! Two extensions back the CI perf gate:
//!
//! * **Harness flags**: `--warm-up-time <secs>` and
//!   `--measurement-time <secs>` are parsed from the bench binary's
//!   arguments (the same spelling the real criterion accepts), so
//!   `cargo bench -- --warm-up-time 0.5 --measurement-time 1` gives a
//!   quick mode. Unknown flags are ignored, as before.
//! * **Machine-readable output**: `--save-json <path>` (or the
//!   `BENCH_JSON` environment variable) makes `criterion_main!` write
//!   every result as a JSON document — the format `bench_compare` in
//!   `crates/bench` diffs against a committed baseline.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Declared work per iteration, used for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter, e.g. `BenchmarkId::from_parameter(1024)`.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// One finished measurement, as recorded for JSON output.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Group name (or `"bench"` for ungrouped functions).
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Mean seconds per iteration.
    pub mean_s: f64,
    /// Minimum seconds per iteration.
    pub min_s: f64,
    /// Timed batches.
    pub samples: usize,
    /// Iterations per batch.
    pub iters_per_sample: u64,
}

static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Timing configuration, shared by every group of a `Criterion`.
#[derive(Debug, Clone, Copy)]
struct Timing {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Timing {
    fn default() -> Self {
        Timing {
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_secs(1),
        }
    }
}

/// Top-level harness state.
#[derive(Debug)]
pub struct Criterion {
    timing: Timing,
    save_json: Option<String>,
}

impl Default for Criterion {
    /// Reads harness flags from the process arguments (`--warm-up-time`,
    /// `--measurement-time`, `--save-json`) and `BENCH_JSON` from the
    /// environment; everything else keeps the built-in quick defaults.
    fn default() -> Self {
        let mut timing = Timing::default();
        let mut save_json = std::env::var("BENCH_JSON").ok().filter(|s| !s.is_empty());
        let args: Vec<String> = std::env::args().collect();
        let mut i = 0;
        while i < args.len() {
            let value = args.get(i + 1);
            match (args[i].as_str(), value) {
                ("--warm-up-time", Some(v)) => {
                    if let Ok(secs) = v.parse::<f64>() {
                        timing.warm_up = Duration::from_secs_f64(secs.max(0.0));
                    }
                    i += 1;
                }
                ("--measurement-time", Some(v)) => {
                    if let Ok(secs) = v.parse::<f64>() {
                        timing.measurement = Duration::from_secs_f64(secs.max(1e-3));
                    }
                    i += 1;
                }
                ("--save-json", Some(v)) => {
                    save_json = Some(v.clone());
                    i += 1;
                }
                _ => {}
            }
            i += 1;
        }
        Criterion { timing, save_json }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let timing = self.timing;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
            timing,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(20, self.timing);
        f(&mut bencher);
        bencher.report("bench", &id.id, None);
        self
    }

    /// Where JSON results should be written, if requested.
    pub fn json_path(&self) -> Option<&str> {
        self.save_json.as_deref()
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    timing: Timing,
}

impl BenchmarkGroup<'_> {
    /// Number of timed batches per benchmark (min 1 enforced).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size, self.timing);
        f(&mut bencher);
        bencher.report(&self.name, &id.id, self.throughput);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size, self.timing);
        f(&mut bencher, input);
        bencher.report(&self.name, &id.id, self.throughput);
        self
    }

    /// Close the group. (Reports are printed as benches run.)
    pub fn finish(self) {}
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    timing: Timing,
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(sample_size: usize, timing: Timing) -> Self {
        Bencher {
            sample_size,
            timing,
            samples: Vec::new(),
            iters_per_sample: 1,
        }
    }

    /// Run the routine repeatedly and record per-batch wall time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: run for at least `warm_up` (and at least once),
        // tracking the fastest observed iteration as the calibration
        // estimate.
        let warm_start = Instant::now();
        let mut once = Duration::MAX;
        loop {
            let t = Instant::now();
            black_box(routine());
            once = once.min(t.elapsed().max(Duration::from_nanos(1)));
            if warm_start.elapsed() >= self.timing.warm_up {
                break;
            }
        }
        // Spread `measurement` across the samples; batch up enough
        // iterations that cheap routines aren't dominated by timer
        // resolution (≥ ~1 ms per batch).
        let per_batch = (self.timing.measurement / self.sample_size.max(1) as u32)
            .max(Duration::from_millis(1));
        let iters = (per_batch.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        self.iters_per_sample = iters;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t.elapsed());
        }
    }

    fn report(&self, group: &str, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples (Bencher::iter never called)");
            return;
        }
        let per_iter = |d: &Duration| d.as_secs_f64() / self.iters_per_sample as f64;
        let min = self
            .samples
            .iter()
            .map(per_iter)
            .fold(f64::INFINITY, f64::min);
        let mean = self.samples.iter().map(per_iter).sum::<f64>() / self.samples.len() as f64;
        let tp = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:.3} Melem/s", n as f64 / mean / 1e6)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:.3} MiB/s", n as f64 / mean / (1024.0 * 1024.0))
            }
            None => String::new(),
        };
        println!(
            "{group}/{id}: mean {}  min {}  ({} samples x {} iters){tp}",
            fmt_time(mean),
            fmt_time(min),
            self.samples.len(),
            self.iters_per_sample,
        );
        RESULTS.lock().expect("results poisoned").push(BenchRecord {
            group: group.to_owned(),
            id: id.to_owned(),
            mean_s: mean,
            min_s: min,
            samples: self.samples.len(),
            iters_per_sample: self.iters_per_sample,
        });
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Serialize every recorded result. Stable field order, one bench per
/// entry, floats via shortest-roundtrip `Display`.
///
/// The top-level `host_threads` field records the machine parallelism
/// the benches ran with: thread-scaling benches (`engine_par/8t`,
/// `engine_fused/8t`, …) measure *speedup* on a multi-core host but
/// *partition overhead* on a single-core one, so a comparison across
/// differing core counts is meaningless — `bench_compare` uses this
/// field to warn instead of gate in that case.
pub fn results_to_json() -> String {
    let results = RESULTS.lock().expect("results poisoned");
    let host_threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut out = format!("{{\n  \"host_threads\": {host_threads},\n  \"benches\": [");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"group\": \"{}\", \"id\": \"{}\", \"mean_s\": {}, \"min_s\": {}, \
             \"samples\": {}, \"iters_per_sample\": {}}}",
            json_escape(&r.group),
            json_escape(&r.id),
            r.mean_s,
            r.min_s,
            r.samples,
            r.iters_per_sample
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Called by `criterion_main!` after all groups ran: write the JSON
/// results if `--save-json`/`BENCH_JSON` asked for them.
pub fn finalize() {
    let path = Criterion::default().save_json.filter(|p| !p.is_empty());
    if let Some(path) = path {
        let json = results_to_json();
        match std::fs::write(&path, &json) {
            Ok(()) => eprintln!("bench results written to {path}"),
            Err(e) => {
                eprintln!("error: cannot write bench JSON to {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given group functions.
///
/// Accepts standard harness flags (`--warm-up-time`, `--measurement-time`,
/// `--save-json`; filters and anything unknown are ignored) so
/// `cargo bench` invocations pass through cleanly, then writes JSON
/// results when requested.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_selftest");
        group.sample_size(3);
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::from_parameter(64), &64u64, |b, &n| {
            b.iter(|| (0..n).map(black_box).sum::<u64>())
        });
        group.bench_function("str_id", |b| b.iter(|| black_box(1 + 1)));
        group.bench_function(BenchmarkId::new("named", 7), |b| {
            b.iter(|| black_box(2 + 2))
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_timing_and_json_registry_run() {
        benches();
        let json = results_to_json();
        assert!(json.contains("\"group\": \"shim_selftest\""));
        assert!(json.contains("\"id\": \"named/7\""));
        assert!(json.contains("\"mean_s\": "));
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("a", 3).id, "a/3");
        assert_eq!(BenchmarkId::from_parameter(1024).id, "1024");
        assert_eq!(BenchmarkId::from("x").id, "x");
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    }
}
