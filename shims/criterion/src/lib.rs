//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Exposes the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `sample_size`, `throughput`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, `BenchmarkId`, `Throughput`, and
//! the `criterion_group!` / `criterion_main!` macros — so `cargo bench`
//! compiles and runs against this shim unchanged.
//!
//! Measurement is deliberately simple: per benchmark, a warm-up batch
//! followed by `sample_size` timed batches, reporting min/mean of the
//! per-iteration wall time (and throughput when declared). No outlier
//! rejection, no HTML reports, no regression baselines — swap in the real
//! crate for those; every call site stays identical.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Declared work per iteration, used for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter, e.g. `BenchmarkId::from_parameter(1024)`.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Top-level harness state.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(20);
        f(&mut bencher);
        bencher.report("bench", &id.id, None);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed batches per benchmark (min 1 enforced).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&self.name, &id.id, self.throughput);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&self.name, &id.id, self.throughput);
        self
    }

    /// Close the group. (Reports are printed as benches run.)
    pub fn finish(self) {}
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            samples: Vec::new(),
            iters_per_sample: 1,
        }
    }

    /// Run the routine repeatedly and record per-batch wall time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up and calibration: aim for batches of ≥ ~5 ms so cheap
        // routines aren't dominated by timer resolution.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(5);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        self.iters_per_sample = iters;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t.elapsed());
        }
    }

    fn report(&self, group: &str, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples (Bencher::iter never called)");
            return;
        }
        let per_iter = |d: &Duration| d.as_secs_f64() / self.iters_per_sample as f64;
        let min = self
            .samples
            .iter()
            .map(per_iter)
            .fold(f64::INFINITY, f64::min);
        let mean = self.samples.iter().map(per_iter).sum::<f64>() / self.samples.len() as f64;
        let tp = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:.3} Melem/s", n as f64 / mean / 1e6)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:.3} MiB/s", n as f64 / mean / (1024.0 * 1024.0))
            }
            None => String::new(),
        };
        println!(
            "{group}/{id}: mean {}  min {}  ({} samples x {} iters){tp}",
            fmt_time(mean),
            fmt_time(min),
            self.samples.len(),
            self.iters_per_sample,
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given group functions.
///
/// Accepts and ignores standard harness flags (`--bench`, filters) so
/// `cargo bench` invocations pass through cleanly.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_selftest");
        group.sample_size(3);
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::from_parameter(64), &64u64, |b, &n| {
            b.iter(|| (0..n).map(black_box).sum::<u64>())
        });
        group.bench_function("str_id", |b| b.iter(|| black_box(1 + 1)));
        group.bench_function(BenchmarkId::new("named", 7), |b| {
            b.iter(|| black_box(2 + 2))
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_and_timing_run() {
        benches();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("a", 3).id, "a/3");
        assert_eq!(BenchmarkId::from_parameter(1024).id, "1024");
        assert_eq!(BenchmarkId::from("x").id, "x");
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
