//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators and the [`proptest!`] macro this
//! workspace uses: range and tuple strategies, `prop_map` /
//! `prop_flat_map`, `prop::collection::vec`, `prop::option::of`,
//! [`prop_oneof!`], [`arbitrary::any`], and `ProptestConfig::with_cases`.
//!
//! Semantic differences from the real crate, on purpose:
//!
//! * **No shrinking.** A failing case panics with the generated inputs in
//!   the assert message; it is not minimized. Every case is reproducible,
//!   though — see below.
//! * **Deterministic seeding.** Case `i` of test `t` draws its inputs
//!   from `ChaCha8(seed = hash(t, i))`, so failures reproduce exactly on
//!   rerun, across machines, with no persistence files. Set
//!   `PROPTEST_CASES` to override the case count globally (smoke vs
//!   soak).
//! * `prop_assert!` family maps to the `assert!` family (panic, not
//!   `Err`), which is equivalent under "no shrinking".

use rand_chacha::ChaCha8Rng;

/// RNG type handed to strategies.
pub type TestRng = ChaCha8Rng;

/// Derive the deterministic RNG for `(test_name, case_index)`.
pub fn test_rng(test_name: &str, case: u32) -> TestRng {
    use rand::SeedableRng;
    // FNV-1a over the test path, then fold in the case index.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
    }
    ChaCha8Rng::seed_from_u64(h ^ (u64::from(case) << 32) ^ u64::from(case))
}

/// Runner configuration. Only the knob this workspace uses.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Apply the `PROPTEST_CASES` environment override, if any.
    pub fn resolve_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::TestRng;
    use rand::RngExt;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// Generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Generate a value, then generate from the strategy it selects —
        /// for dependent inputs (e.g. a graph size, then edges within it).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }

        /// Type-erase, for heterogeneous unions ([`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<B, F> {
        pub(crate) base: B,
        pub(crate) f: F,
    }

    impl<B, O, F> Strategy for Map<B, F>
    where
        B: Strategy,
        F: Fn(B::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<B, F> {
        pub(crate) base: B,
        pub(crate) f: F,
    }

    impl<B, S, F> Strategy for FlatMap<B, F>
    where
        B: Strategy,
        S: Strategy,
        F: Fn(B::Value) -> S,
    {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (self.f)(self.base.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice among boxed strategies ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from a non-empty option list.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.random_range(0..self.options.len());
            self.options[idx].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
    );

    /// Strategy yielding a constant.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — "any representable value of `T`".

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::RngExt;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw a value from the full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_via_random {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.random()
                }
            }
        )*};
    }

    impl_arbitrary_via_random!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::RngExt;

    /// Anything usable as the size argument of [`vec`]: a fixed size or a
    /// range of sizes.
    pub trait IntoSizeRange {
        /// Draw a concrete length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `vec(element, 0..200)` or `vec(element, 60)`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }
}

pub mod option {
    //! Option strategies (`prop::option::of`).

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::RngExt;

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Match real proptest's default: Some three times out of four.
            if rng.random_bool(0.75) {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }

    /// `of(inner)`: `None` sometimes, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod prelude {
    //! The customary glob import: `use proptest::prelude::*;`.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    // `proptest!` and the `prop_*` macros are `#[macro_export]`ed at the
    // crate root; re-export so the glob import brings them in too.
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a property body (maps to [`assert!`]; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property body (maps to [`assert_eq!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property body (maps to [`assert_ne!`]).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn holds(x in 0usize..100, flag in any::<bool>()) {
///         prop_assert!(x < 100 || flag);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let cases = config.resolve_cases();
            for case in 0..cases {
                let mut __proptest_rng =
                    $crate::test_rng(concat!(module_path!(), "::", stringify!($name)), case);
                $(
                    let $pat = $crate::strategy::Strategy::sample(
                        &($strategy),
                        &mut __proptest_rng,
                    );
                )+
                $body
            }
        }
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_sample_in_domain() {
        let mut rng = crate::test_rng("shim::inline", 0);
        let strat = (0usize..10, 5u8..=6, 0.0f64..1.0);
        for _ in 0..500 {
            let (a, b, c) = strat.sample(&mut rng);
            assert!(a < 10);
            assert!((5..=6).contains(&b));
            assert!((0.0..1.0).contains(&c));
        }
    }

    #[test]
    fn union_covers_all_options() {
        let mut rng = crate::test_rng("shim::union", 0);
        let strat = prop_oneof![0usize..1, 10usize..11, 20usize..21];
        let mut seen = [false; 3];
        for _ in 0..200 {
            match strat.sample(&mut rng) {
                0 => seen[0] = true,
                10 => seen[1] = true,
                20 => seen[2] = true,
                other => panic!("impossible value {other}"),
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn flat_map_sees_outer_value() {
        let mut rng = crate::test_rng("shim::flatmap", 0);
        let strat = (1usize..50).prop_flat_map(|n| (0usize..n).prop_map(move |k| (n, k)));
        for _ in 0..500 {
            let (n, k) = strat.sample(&mut rng);
            assert!(k < n);
        }
    }

    #[test]
    fn vec_fixed_and_ranged_sizes() {
        let mut rng = crate::test_rng("shim::vec", 0);
        let fixed = prop::collection::vec(any::<bool>(), 60usize);
        assert_eq!(fixed.sample(&mut rng).len(), 60);
        let ranged = prop::collection::vec(0usize..5, 0..9usize);
        for _ in 0..100 {
            assert!(ranged.sample(&mut rng).len() < 9);
        }
    }

    #[test]
    fn deterministic_per_test_and_case() {
        let a: u64 = any::<u64>().sample(&mut crate::test_rng("t", 3));
        let b: u64 = any::<u64>().sample(&mut crate::test_rng("t", 3));
        let c: u64 = any::<u64>().sample(&mut crate::test_rng("t", 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: bindings, tuple patterns, trailing comma.
        #[test]
        fn macro_end_to_end(
            x in 0usize..100,
            (lo, hi) in (0u32..50, 50u32..100),
            maybe in prop::option::of(1u64..9),
        ) {
            prop_assert!(x < 100);
            prop_assert!(lo < hi);
            if let Some(v) = maybe {
                prop_assert!((1..9).contains(&v));
            }
        }
    }
}
