//! Offline stand-in for the `serde` facade.
//!
//! Provides the two trait *names* and re-exports the no-op derives from
//! the `serde_derive` shim, exactly mirroring how the real `serde` crate
//! surfaces its derive macros. `use serde::{Serialize, Deserialize}`
//! imports both the traits (type namespace) and the derives (macro
//! namespace), as with the real crate. The traits are empty: nothing
//! in-tree performs serialization yet, and the no-op derives generate no
//! impls, so nothing can silently rely on them.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`. Intentionally empty.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`. Intentionally empty; the
/// real trait's `'de` lifetime is dropped because no bounds in this
/// workspace name it.
pub trait Deserialize {}
