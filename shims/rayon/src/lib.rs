//! Offline stand-in for the `rayon` crate.
//!
//! Implements the one data-parallel pattern the workspace uses —
//! `(0..trials).into_par_iter().map(f).collect::<Vec<_>>()` — with real
//! threads (`std::thread::scope`), static chunking over
//! `available_parallelism` workers, and strict order preservation, so a
//! later swap to the real crate changes scheduling, not results.
//!
//! Scheduling never influences output: items are materialized up front,
//! split into contiguous chunks, mapped in place, and reassembled in
//! index order. There is no work stealing; the paper's trial workloads
//! are uniform enough that static chunking is within noise of rayon for
//! this repo's fan-outs.

use std::num::NonZeroUsize;

/// The customary glob import: `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

/// Number of worker threads used by [`ParallelIterator::collect`]:
/// `RAYON_NUM_THREADS` when set to a positive integer (the same knob the
/// real crate's default pool honors), otherwise the machine parallelism.
pub fn current_num_threads() -> usize {
    if let Some(n) = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Concrete parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Begin a parallel pipeline over `self`.
    fn into_par_iter(self) -> Self::Iter;
}

/// A (deliberately small) parallel iterator: `map` then `collect`.
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// Materialize the remaining items, in order.
    fn into_items(self) -> Vec<Self::Item>;

    /// Lazily apply `f` to every element.
    fn map<O, F>(self, f: F) -> Map<Self, F>
    where
        O: Send,
        F: Fn(Self::Item) -> O + Sync,
    {
        Map { base: self, f }
    }

    /// Execute the pipeline across threads, preserving item order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.into_items().into_iter().collect()
    }
}

/// Root iterator over pre-materialized items.
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;

    fn into_items(self) -> Vec<T> {
        self.items
    }
}

/// Lazy `map` stage.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, O, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    O: Send,
    F: Fn(B::Item) -> O + Sync,
{
    type Item = O;

    fn into_items(self) -> Vec<O> {
        let items = self.base.into_items();
        let f = &self.f;
        let threads = current_num_threads().min(items.len().max(1));
        if threads <= 1 {
            return items.into_iter().map(f).collect();
        }
        let chunk = items.len().div_ceil(threads);
        let mut chunks: Vec<Vec<B::Item>> = Vec::with_capacity(threads);
        let mut rest = items;
        while rest.len() > chunk {
            let tail = rest.split_off(chunk);
            chunks.push(rest);
            rest = tail;
        }
        chunks.push(rest);
        let mut mapped: Vec<Vec<O>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<O>>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });
        let mut out = Vec::with_capacity(mapped.iter().map(Vec::len).sum());
        for part in &mut mapped {
            out.append(part);
        }
        out
    }
}

macro_rules! impl_into_par_range {
    ($($t:ty),* $(,)?) => {$(
        impl IntoParallelIterator for core::ops::Range<$t> {
            type Item = $t;
            type Iter = VecParIter<$t>;
            fn into_par_iter(self) -> VecParIter<$t> {
                VecParIter { items: self.collect() }
            }
        }
    )*};
}

impl_into_par_range!(u32, u64, usize);

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;
    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<usize> = (0..0usize).into_par_iter().map(|i| i).collect();
        assert!(empty.is_empty());
        let one: Vec<usize> = (5..6usize).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(one, vec![6]);
    }

    #[test]
    fn chained_maps() {
        let out: Vec<String> = vec![1, 2, 3]
            .into_par_iter()
            .map(|i| i * 10)
            .map(|i| format!("v{i}"))
            .collect();
        assert_eq!(out, vec!["v10", "v20", "v30"]);
    }

    #[test]
    fn uses_actual_threads_when_available() {
        // Not asserting on thread ids (single-core CI exists); just that a
        // large fan-out completes and stays ordered under contention.
        let out: Vec<u64> = (0..10_000u64).into_par_iter().map(|i| i % 97).collect();
        assert_eq!(out.len(), 10_000);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 % 97));
    }
}
